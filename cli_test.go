package ugs_test

// End-to-end CLI tests, two layers deep: the in-process suite drives the
// tools through internal/cli's run functions (same flag parsing, same exit
// codes, no subprocess), and the subprocess suite additionally builds the
// real binaries and drives them through exec.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ugs"
	"ugs/internal/cli"
	"ugs/internal/serve"
)

// runTool invokes one of the in-process CLI entry points, returning its
// exit code and captured stdout/stderr.
func runTool(t *testing.T, run func([]string, io.Writer, io.Writer) int, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestInProcessPipeline drives the full generate → sparsify → re-sparsify →
// experiment pipeline through the main packages' run functions, asserting
// exit codes and the shape of every file the stages hand to each other.
func TestInProcessPipeline(t *testing.T) {
	work := t.TempDir()
	graphFile := filepath.Join(work, "g.ugs")
	sparseFile := filepath.Join(work, "s.ugs")
	resparseFile := filepath.Join(work, "ss.ugs")

	// Stage 1: generate.
	code, out, errOut := runTool(t, cli.RunGen, "-kind", "twitter", "-n", "100", "-seed", "5", "-out", graphFile)
	if code != 0 {
		t.Fatalf("ugs-gen exit %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "wrote "+graphFile) {
		t.Errorf("ugs-gen stdout: %q", out)
	}
	g, err := ugs.ReadGraphFile(graphFile)
	if err != nil {
		t.Fatalf("generated file unreadable: %v", err)
	}
	if g.NumVertices() != 100 || g.NumEdges() == 0 {
		t.Fatalf("generated graph shape: %v", g)
	}

	// Stage 2: sparsify.
	code, out, errOut = runTool(t, cli.RunSparsify,
		"-in", graphFile, "-out", sparseFile, "-alpha", "0.4", "-method", "emd", "-seed", "2")
	if code != 0 {
		t.Fatalf("ugs exit %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "degree discrepancy") || !strings.Contains(out, "wrote "+sparseFile) {
		t.Errorf("ugs stdout: %q", out)
	}
	sparse, err := ugs.ReadGraphFile(sparseFile)
	if err != nil {
		t.Fatalf("sparsified file unreadable: %v", err)
	}
	budget := int(math.Round(0.4 * float64(g.NumEdges())))
	if sparse.NumVertices() != g.NumVertices() || sparse.NumEdges() > budget {
		t.Fatalf("sparsified shape: %v, want ≤ %d edges on %d vertices", sparse, budget, g.NumVertices())
	}

	// Stage 3: re-sparsify the sparsified output (the ROADMAP regression
	// scenario: written sparsifier output must itself be a valid input).
	code, _, errOut = runTool(t, cli.RunSparsify,
		"-in", sparseFile, "-out", resparseFile, "-alpha", "0.5", "-method", "gdb", "-seed", "3")
	if code != 0 {
		t.Fatalf("re-ugs exit %d\nstderr: %s", code, errOut)
	}
	resparse, err := ugs.ReadGraphFile(resparseFile)
	if err != nil {
		t.Fatalf("re-sparsified file unreadable: %v", err)
	}
	if resparse.NumEdges() >= sparse.NumEdges() {
		t.Errorf("second pass did not reduce edges: %d >= %d", resparse.NumEdges(), sparse.NumEdges())
	}

	// Stage 4: experiments run on the library the files round-tripped
	// through.
	code, out, errOut = runTool(t, cli.RunExp, "table1")
	if code != 0 {
		t.Fatalf("ugs-exp exit %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "completed") {
		t.Errorf("ugs-exp stdout: %q", out)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the output of a
// concurrently running tool.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestInProcessServe boots ugs-serve through its run function on an
// ephemeral port, drives the HTTP API (upload → sparsify → cached repeat →
// query), then cancels the lifetime context and asserts a clean graceful
// shutdown with exit code 0.
func TestInProcessServe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- cli.RunServeContext(ctx, []string{"-addr", "127.0.0.1:0", "-graphs", "examples/graphs"}, &stdout, &stderr)
	}()

	// Wait for the listen line and extract the base URL.
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; {
		out := stdout.String()
		if i := strings.Index(out, "listening on http://"); i >= 0 {
			rest := out[i+len("listening on "):]
			base = strings.TrimSpace(rest[:strings.IndexByte(rest, '\n')])
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address\nstdout: %s\nstderr: %s", out, stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(blob)
	}
	post := func(path, contentType, body string) (int, string) {
		resp, err := http.Post(base+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(blob)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	// The -graphs dir was loaded at startup.
	if code, body := get("/v1/graphs"); code != 200 || !strings.Contains(body, "twitter80") || !strings.Contains(body, "tiny") {
		t.Fatalf("graphs: %d %s", code, body)
	}
	if code, body := post("/v1/sparsify", "application/json",
		`{"graph":"twitter80","alpha":0.3,"method":"gdb","seed":1}`); code != 200 || !strings.Contains(body, `"cached": false`) {
		t.Fatalf("sparsify: %d %s", code, body)
	}
	if code, body := post("/v1/sparsify", "application/json",
		`{"graph":"twitter80","alpha":0.3,"method":"gdb","seed":1}`); code != 200 || !strings.Contains(body, `"cached": true`) {
		t.Fatalf("repeat sparsify not cached: %d %s", code, body)
	}
	if code, body := post("/v1/query", "application/json",
		`{"graph":"twitter80","kind":"reliability","pairs":[[0,5],[3,9]],"samples":64,"seed":2}`); code != 200 || !strings.Contains(body, "values") {
		t.Fatalf("query: %d %s", code, body)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if out := stdout.String(); !strings.Contains(out, "shutting down") || !strings.Contains(out, "bye") {
		t.Errorf("shutdown log: %q", out)
	}
}

// TestInProcessExitCodes pins the exit-code contract of every tool: 2 for
// usage errors, 1 for runtime failures, 0 for success.
func TestInProcessExitCodes(t *testing.T) {
	work := t.TempDir()
	if code, _, _ := runTool(t, cli.RunGen); code != 2 {
		t.Errorf("ugs-gen without -out: exit %d, want 2", code)
	}
	if code, _, _ := runTool(t, cli.RunGen, "-kind", "bogus", "-out", filepath.Join(work, "x.ugs")); code != 1 {
		t.Errorf("ugs-gen bogus kind: exit %d, want 1", code)
	}
	if code, _, _ := runTool(t, cli.RunSparsify); code != 2 {
		t.Errorf("ugs without -in: exit %d, want 2", code)
	}
	if code, _, _ := runTool(t, cli.RunSparsify, "-in", filepath.Join(work, "missing.ugs")); code != 1 {
		t.Errorf("ugs missing input: exit %d, want 1", code)
	}
	if code, _, _ := runTool(t, cli.RunSparsify, "-bogus-flag"); code != 2 {
		t.Errorf("ugs bogus flag: exit %d, want 2", code)
	}
	if code, _, _ := runTool(t, cli.RunExp); code != 2 {
		t.Errorf("ugs-exp without ids: exit %d, want 2", code)
	}
	if code, _, _ := runTool(t, cli.RunExp, "nope"); code != 2 {
		t.Errorf("ugs-exp unknown id: exit %d, want 2", code)
	}
	if code, out, _ := runTool(t, cli.RunExp, "-list"); code != 0 || !strings.Contains(out, "table1") {
		t.Errorf("ugs-exp -list: exit %d, out %q", code, out)
	}
}

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles the commands once per test process.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ugs-cli")
		if err != nil {
			cliErr = err
			return
		}
		for _, tool := range []string{"ugs", "ugs-gen", "ugs-exp"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = err
				t.Logf("go build %s: %s", tool, out)
				return
			}
		}
		cliDir = dir
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, dir, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIGenerateAndSparsify(t *testing.T) {
	dir := buildCLIs(t)
	work := t.TempDir()
	graphFile := filepath.Join(work, "g.txt")
	sparseFile := filepath.Join(work, "s.txt")

	out, err := runCLI(t, dir, "ugs-gen", "-kind", "twitter", "-n", "120", "-seed", "3", "-out", graphFile)
	if err != nil {
		t.Fatalf("ugs-gen: %v\n%s", err, out)
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("ugs-gen output: %q", out)
	}
	g, err := ugs.ReadGraphFile(graphFile)
	if err != nil {
		t.Fatalf("generated file unreadable: %v", err)
	}

	for _, method := range []string{"gdb", "emd", "ni", "ss"} {
		out, err := runCLI(t, dir, "ugs",
			"-in", graphFile, "-out", sparseFile,
			"-alpha", "0.3", "-method", method, "-seed", "1")
		if err != nil {
			t.Fatalf("ugs -method %s: %v\n%s", method, err, out)
		}
		sparse, err := ugs.ReadGraphFile(sparseFile)
		if err != nil {
			t.Fatalf("%s: sparsified file unreadable: %v", method, err)
		}
		// The sparsifier keeps α|E| edges, but Write drops those whose
		// probability was driven to exactly 0. Methods are deterministic
		// given (graph, α, seed), so rerunning in-process with the CLI's
		// flag defaults tells us exactly how many survive the write.
		sp, err := ugs.Lookup(method, ugs.WithSeed(1))
		if err != nil {
			t.Fatalf("%s: Lookup: %v", method, err)
		}
		res, err := sp.Sparsify(context.Background(), g, 0.3)
		if err != nil {
			t.Fatalf("%s: in-process Sparsify: %v", method, err)
		}
		want := 0
		for id := 0; id < res.Graph.NumEdges(); id++ {
			if res.Graph.Prob(id) > 0 {
				want++
			}
		}
		if kept := int(math.Round(0.3 * float64(g.NumEdges()))); res.Graph.NumEdges() != kept {
			t.Errorf("%s: in-process result has %d edges, want α|E| = %d", method, res.Graph.NumEdges(), kept)
		}
		if sparse.NumEdges() != want {
			t.Errorf("%s: written file has %d edges, want %d (α|E| minus p=0 drops)", method, sparse.NumEdges(), want)
		}
		for id := 0; id < sparse.NumEdges(); id++ {
			if sparse.Prob(id) == 0 {
				t.Errorf("%s: written file contains a p=0 edge", method)
				break
			}
		}
		if !strings.Contains(out, "degree discrepancy") {
			t.Errorf("%s: missing stats in output:\n%s", method, out)
		}
	}
}

func TestCLISparsifyErrors(t *testing.T) {
	dir := buildCLIs(t)
	if out, err := runCLI(t, dir, "ugs"); err == nil {
		t.Errorf("missing -in accepted:\n%s", out)
	}
	work := t.TempDir()
	graphFile := filepath.Join(work, "g.txt")
	if out, err := runCLI(t, dir, "ugs-gen", "-kind", "social", "-n", "30", "-avgdeg", "4", "-out", graphFile); err != nil {
		t.Fatalf("ugs-gen: %v\n%s", err, out)
	}
	if out, err := runCLI(t, dir, "ugs", "-in", graphFile, "-method", "bogus"); err == nil {
		t.Errorf("bogus method accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs", "-in", graphFile, "-alpha", "7"); err == nil {
		t.Errorf("alpha 7 accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs", "-in", filepath.Join(work, "missing.txt")); err == nil {
		t.Errorf("missing input accepted:\n%s", out)
	}
}

func TestCLIGenErrors(t *testing.T) {
	dir := buildCLIs(t)
	if out, err := runCLI(t, dir, "ugs-gen"); err == nil {
		t.Errorf("missing -out accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs-gen", "-kind", "bogus", "-out", filepath.Join(t.TempDir(), "x.txt")); err == nil {
		t.Errorf("bogus kind accepted:\n%s", out)
	}
}

func TestCLIExperiments(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "ugs-exp", "-list")
	if err != nil {
		t.Fatalf("ugs-exp -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table1", "table2", "fig10", "fig12"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list missing %q:\n%s", id, out)
		}
	}

	out, err = runCLI(t, dir, "ugs-exp", "table1")
	if err != nil {
		t.Fatalf("ugs-exp table1: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Flickr-like") || !strings.Contains(out, "completed") {
		t.Errorf("table1 output unexpected:\n%s", out)
	}

	if out, err := runCLI(t, dir, "ugs-exp", "nope"); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs-exp"); err == nil {
		t.Errorf("no-args accepted:\n%s", out)
	}
}

// bootServe starts ugs-serve in-process with the given extra flags and waits
// for its listen line, returning the base URL and the exit channel. The
// caller cancels ctx to begin shutdown.
func bootServe(t *testing.T, ctx context.Context, stdout, stderr *syncBuffer, extra ...string) (string, chan int) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	exit := make(chan int, 1)
	go func() {
		exit <- cli.RunServeContext(ctx, args, stdout, stderr)
	}()
	for deadline := time.Now().Add(10 * time.Second); ; {
		out := stdout.String()
		if i := strings.Index(out, "listening on http://"); i >= 0 {
			rest := out[i+len("listening on "):]
			return strings.TrimSpace(rest[:strings.IndexByte(rest, '\n')]), exit
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address\nstdout: %s\nstderr: %s", out, stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeStuckJobShutdown: a job wedged in a slow fault (which ignores
// cancellation, like a real stuck syscall) must not wedge shutdown — after
// the -drain budget its context is force-cancelled, and after -drain-timeout
// more the process exits anyway with code 1, reporting the stuck job.
func TestServeStuckJobShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	base, exit := bootServe(t, ctx, &stdout, &stderr,
		"-graphs", "examples/graphs",
		"-faults", "job.run:slow=5s",
		"-drain", "100ms", "-drain-timeout", "100ms")

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"graph":"twitter80","alpha":0.3,"method":"gdb","seed":1}`))
	if err != nil {
		t.Fatalf("create job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("create job: %d", resp.StatusCode)
	}
	time.Sleep(50 * time.Millisecond) // let the job enter its stuck fault

	cancel()
	select {
	case code := <-exit:
		if code != 1 {
			t.Errorf("exit code %d, want 1 (stuck job reported)\nstderr: %s", code, stderr.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stuck job wedged the shutdown")
	}
	errs := stderr.String()
	if !strings.Contains(errs, "forcing cancellation") || !strings.Contains(errs, "exiting anyway") {
		t.Errorf("stderr missing forced-cancel trail: %s", errs)
	}
	if !strings.Contains(errs, "FAULT INJECTION ACTIVE") {
		t.Errorf("fault injection not announced on stderr: %s", errs)
	}
}

// TestServeChaosSmoke is the CI chaos gate: boot ugs-serve with a corrupt
// graph (quarantined at load) and injected handler panics, hammer it with
// mixed traffic through the retrying client, and assert that panics were all
// recovered, the quarantine held, every failure wore the typed envelope (no
// bare 500s), and shutdown still exits 0.
func TestServeChaosSmoke(t *testing.T) {
	dir := t.TempDir()
	if err := ugs.WriteBinaryGraphFile(filepath.Join(dir, "g.ugsb"), ugs.TwitterLike(60, 3)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.ugsb"), []byte("definitely not a ugsb header"), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	base, exit := bootServe(t, ctx, &stdout, &stderr,
		"-graphs", dir,
		"-faults", "handler.query:panic@0.2", "-faults-seed", "7")

	client := serve.NewClient(base, serve.WithRetries(2),
		serve.WithBackoff(time.Millisecond, 10*time.Millisecond))
	nonEnvelope := 0
	sawEnvelope := func(err error) {
		var apiErr *serve.APIError
		if err == nil {
			return
		}
		if !errors.As(err, &apiErr) || strings.HasPrefix(apiErr.Message, "HTTP ") {
			nonEnvelope++
		}
	}
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0, 1:
			_, err := client.Query(ctx, &serve.QueryRequest{
				Graph: "g", Kind: "reliability", Pairs: [][2]int{{0, i % 60}},
				Samples: 16, Seed: int64(i)})
			sawEnvelope(err)
		case 2:
			// The quarantined graph: retried (it is retryable) then surfaced
			// as a typed quarantined error, never a bare 500.
			_, err := client.Query(ctx, &serve.QueryRequest{
				Graph: "bad", Kind: "reliability", Pairs: [][2]int{{0, 1}}, Samples: 8})
			if err == nil {
				t.Fatal("quarantined graph served a result")
			}
			sawEnvelope(err)
		default:
			_, err := client.Stats(ctx)
			sawEnvelope(err)
		}
	}
	if nonEnvelope != 0 {
		t.Errorf("%d failures were not typed envelopes", nonEnvelope)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats after chaos: %v", err)
	}
	if stats.Resilience.HandlerPanics == 0 {
		t.Error("no panics recovered at rate 0.2 over 20 queries")
	}
	if stats.Resilience.Quarantined < 1 || stats.Resilience.QuarantineRejects == 0 {
		t.Errorf("quarantine not exercised: %+v", stats.Resilience)
	}
	if stats.Resilience.FaultsInjected == 0 {
		t.Error("fault injector reports zero injections")
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestCLIPatch drives the "ugs patch" verb in both modes: local file → file,
// and against a live server through the retrying client.
func TestCLIPatch(t *testing.T) {
	work := t.TempDir()
	graphFile := filepath.Join(work, "g.ugs")
	outFile := filepath.Join(work, "patched.ugsb")
	editsFile := filepath.Join(work, "edits.txt")

	g := ugs.TwitterLike(50, 4)
	if err := ugs.WriteGraphFile(graphFile, g); err != nil {
		t.Fatal(err)
	}
	e0, e1 := g.Edge(0), g.Edge(1)
	edits := fmt.Sprintf("# reweight one edge, drop another\nreweight %d %d 0.25\ndelete %d %d\n",
		e0.U, e0.V, e1.U, e1.V)
	if err := os.WriteFile(editsFile, []byte(edits), 0o644); err != nil {
		t.Fatal(err)
	}

	// Local mode.
	code, out, errOut := runTool(t, cli.RunPatch, "-in", graphFile, "-out", outFile, "-edits", editsFile)
	if code != 0 {
		t.Fatalf("patch exit %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "2 edit(s) applied") {
		t.Errorf("patch stdout: %q", out)
	}
	pg, err := ugs.OpenMappedGraph(outFile)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	if id, ok := pg.EdgeID(e0.U, e0.V); !ok || pg.Prob(id) != 0.25 {
		t.Error("reweight not applied to output file")
	}
	if pg.HasEdge(e1.U, e1.V) || pg.NumEdges() != g.NumEdges()-1 {
		t.Error("delete not applied to output file")
	}

	// Usage and validation failures.
	if code, _, _ := runTool(t, cli.RunPatch, "-edits", editsFile); code != 2 {
		t.Errorf("missing -in/-out: exit %d", code)
	}
	badEdits := filepath.Join(work, "bad.txt")
	if err := os.WriteFile(badEdits, []byte("upsert 0 1 0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errs := runTool(t, cli.RunPatch, "-in", graphFile, "-out", outFile, "-edits", badEdits); code != 1 || !strings.Contains(errs, "unknown edit op") {
		t.Errorf("bad edits: exit %d stderr %q", code, errs)
	}

	// Server mode, with optimistic concurrency.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := serve.New(ctx, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Store().Add("g", g); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, out, errOut = runTool(t, cli.RunPatch,
		"-server", ts.URL, "-graph", "g", "-expect-version", "1", "-edits", editsFile)
	if code != 0 {
		t.Fatalf("server patch exit %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "version 2") {
		t.Errorf("server patch stdout: %q", out)
	}
	// Replay with the now-stale precondition: typed conflict, exit 1.
	if code, _, errs := runTool(t, cli.RunPatch,
		"-server", ts.URL, "-graph", "g", "-expect-version", "1", "-edits", editsFile); code != 1 || !strings.Contains(errs, "conflict") {
		t.Errorf("stale expect-version: exit %d stderr %q", code, errs)
	}
}
