package ugs_test

// End-to-end CLI tests: build the three binaries and drive the full
// generate → sparsify → experiment pipeline through their flag interfaces.

import (
	"context"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ugs"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles the commands once per test process.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ugs-cli")
		if err != nil {
			cliErr = err
			return
		}
		for _, tool := range []string{"ugs", "ugs-gen", "ugs-exp"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = err
				t.Logf("go build %s: %s", tool, out)
				return
			}
		}
		cliDir = dir
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, dir, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIGenerateAndSparsify(t *testing.T) {
	dir := buildCLIs(t)
	work := t.TempDir()
	graphFile := filepath.Join(work, "g.txt")
	sparseFile := filepath.Join(work, "s.txt")

	out, err := runCLI(t, dir, "ugs-gen", "-kind", "twitter", "-n", "120", "-seed", "3", "-out", graphFile)
	if err != nil {
		t.Fatalf("ugs-gen: %v\n%s", err, out)
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("ugs-gen output: %q", out)
	}
	g, err := ugs.ReadGraphFile(graphFile)
	if err != nil {
		t.Fatalf("generated file unreadable: %v", err)
	}

	for _, method := range []string{"gdb", "emd", "ni", "ss"} {
		out, err := runCLI(t, dir, "ugs",
			"-in", graphFile, "-out", sparseFile,
			"-alpha", "0.3", "-method", method, "-seed", "1")
		if err != nil {
			t.Fatalf("ugs -method %s: %v\n%s", method, err, out)
		}
		sparse, err := ugs.ReadGraphFile(sparseFile)
		if err != nil {
			t.Fatalf("%s: sparsified file unreadable: %v", method, err)
		}
		// The sparsifier keeps α|E| edges, but Write drops those whose
		// probability was driven to exactly 0. Methods are deterministic
		// given (graph, α, seed), so rerunning in-process with the CLI's
		// flag defaults tells us exactly how many survive the write.
		sp, err := ugs.Lookup(method, ugs.WithSeed(1))
		if err != nil {
			t.Fatalf("%s: Lookup: %v", method, err)
		}
		res, err := sp.Sparsify(context.Background(), g, 0.3)
		if err != nil {
			t.Fatalf("%s: in-process Sparsify: %v", method, err)
		}
		want := 0
		for id := 0; id < res.Graph.NumEdges(); id++ {
			if res.Graph.Prob(id) > 0 {
				want++
			}
		}
		if kept := int(math.Round(0.3 * float64(g.NumEdges()))); res.Graph.NumEdges() != kept {
			t.Errorf("%s: in-process result has %d edges, want α|E| = %d", method, res.Graph.NumEdges(), kept)
		}
		if sparse.NumEdges() != want {
			t.Errorf("%s: written file has %d edges, want %d (α|E| minus p=0 drops)", method, sparse.NumEdges(), want)
		}
		for id := 0; id < sparse.NumEdges(); id++ {
			if sparse.Prob(id) == 0 {
				t.Errorf("%s: written file contains a p=0 edge", method)
				break
			}
		}
		if !strings.Contains(out, "degree discrepancy") {
			t.Errorf("%s: missing stats in output:\n%s", method, out)
		}
	}
}

func TestCLISparsifyErrors(t *testing.T) {
	dir := buildCLIs(t)
	if out, err := runCLI(t, dir, "ugs"); err == nil {
		t.Errorf("missing -in accepted:\n%s", out)
	}
	work := t.TempDir()
	graphFile := filepath.Join(work, "g.txt")
	if out, err := runCLI(t, dir, "ugs-gen", "-kind", "social", "-n", "30", "-avgdeg", "4", "-out", graphFile); err != nil {
		t.Fatalf("ugs-gen: %v\n%s", err, out)
	}
	if out, err := runCLI(t, dir, "ugs", "-in", graphFile, "-method", "bogus"); err == nil {
		t.Errorf("bogus method accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs", "-in", graphFile, "-alpha", "7"); err == nil {
		t.Errorf("alpha 7 accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs", "-in", filepath.Join(work, "missing.txt")); err == nil {
		t.Errorf("missing input accepted:\n%s", out)
	}
}

func TestCLIGenErrors(t *testing.T) {
	dir := buildCLIs(t)
	if out, err := runCLI(t, dir, "ugs-gen"); err == nil {
		t.Errorf("missing -out accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs-gen", "-kind", "bogus", "-out", filepath.Join(t.TempDir(), "x.txt")); err == nil {
		t.Errorf("bogus kind accepted:\n%s", out)
	}
}

func TestCLIExperiments(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "ugs-exp", "-list")
	if err != nil {
		t.Fatalf("ugs-exp -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table1", "table2", "fig10", "fig12"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list missing %q:\n%s", id, out)
		}
	}

	out, err = runCLI(t, dir, "ugs-exp", "table1")
	if err != nil {
		t.Fatalf("ugs-exp table1: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Flickr-like") || !strings.Contains(out, "completed") {
		t.Errorf("table1 output unexpected:\n%s", out)
	}

	if out, err := runCLI(t, dir, "ugs-exp", "nope"); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
	if out, err := runCLI(t, dir, "ugs-exp"); err == nil {
		t.Errorf("no-args accepted:\n%s", out)
	}
}
