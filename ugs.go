// Package ugs implements uncertain graph sparsification: given an uncertain
// (probabilistic) graph G = (V, E, p) and a ratio α ∈ (0, 1), it produces a
// subgraph G' = (V, E', p') with |E'| = α|E| that preserves G's structural
// properties (expected vertex degrees and expected cut sizes) while reducing
// its entropy, so that Monte-Carlo query estimation on G' is both faster per
// sample and needs fewer samples.
//
// The package is a from-scratch Go implementation of
//
//	P. Parchas, N. Papailiou, D. Papadias, F. Bonchi.
//	"Uncertain Graph Sparsification", TKDE 2018 / ICDE 2019 (extended
//	abstract), arXiv:1611.04308.
//
// It provides the paper's two sparsifiers — Gradient Descent Backbone (GDB)
// and Expectation-Maximization Degree (EMD) — together with the optimal
// LP probability assignment, the two deterministic-sparsification benchmarks
// adapted to uncertain graphs (Nagamochi–Ibaraki cuts and Baswana–Sen
// spanners), Monte-Carlo estimators for PageRank, shortest-path distance,
// reliability and clustering coefficient, and the statistics used to
// evaluate them.
//
// # Quick start
//
// Every method is a Sparsifier resolved by name from the registry and
// configured with functional options:
//
//	g, _ := ugs.ReadGraphFile("graph.txt")
//	sp, _ := ugs.Lookup("emd", ugs.WithDiscrepancy(ugs.Relative), ugs.WithSeed(1))
//	res, _ := sp.Sparsify(context.Background(), g, 0.25)
//	fmt.Println(res.Graph.NumEdges(), res.Stats.Iterations)
//
// ugs.Methods() lists the registered methods ("gdb", "emd", "lp", "ni",
// "ss" plus any custom registrations); long runs are cancellable through
// the context and observable through ugs.WithProgress. New methods plug in
// without touching the core:
//
//	ugs.MustRegister("mymethod", func(opts ...ugs.Option) (ugs.Sparsifier, error) {
//		return ugs.NewSparsifier("mymethod", run), nil
//	})
//
// See the examples/ directory for complete programs.
package ugs

import (
	"context"
	"io"
	"math/rand"

	"ugs/internal/core"
	"ugs/internal/gen"
	"ugs/internal/mc"
	"ugs/internal/queries"
	"ugs/internal/repr"
	"ugs/internal/stats"
	"ugs/internal/ugraph"
)

// Core graph types.
type (
	// Graph is an uncertain undirected graph with per-edge existence
	// probabilities.
	Graph = ugraph.Graph
	// Edge is an undirected edge with probability P.
	Edge = ugraph.Edge
	// Builder incrementally assembles a Graph.
	Builder = ugraph.Builder
	// World is one sampled deterministic materialization of a Graph.
	World = ugraph.World
	// Vec is the word-vector constraint of the variable-width bit-parallel
	// engine: Vec64, Vec128 and Vec256 carry 64, 128 and 256 world lanes.
	Vec = ugraph.Vec
	// Vec64 is the one-word, 64-lane vector.
	Vec64 = ugraph.Vec64
	// Vec128 is the two-word, 128-lane vector.
	Vec128 = ugraph.Vec128
	// Vec256 is the four-word, 256-lane vector.
	Vec256 = ugraph.Vec256
	// WorldBatch holds up to VecLanes[V] sampled worlds in lane-transposed
	// form (one lane mask per edge), the representation behind the
	// bit-parallel query engine. Fill it with SampleWorldBatch (or
	// Graph.SampleBatchSeeded at the 64-lane width).
	WorldBatch[V Vec] = ugraph.WorldBatch[V]
	// MaskBFS is the reusable bit-parallel traversal over a WorldBatch:
	// one pass answers reachability and hop distance for every lane.
	MaskBFS[V Vec] = queries.MaskBFS[V]
	// MCTarget is a sequential-stopping accuracy target (see WithConfidence).
	MCTarget = mc.Target
	// MCRunInfo reports what a Monte-Carlo run did: samples drawn, adaptive
	// rounds, and whether a confidence target converged.
	MCRunInfo = mc.RunInfo
	// FillCache memoizes deterministic 64-lane world fills across
	// Monte-Carlo runs (see MCOptions.FillCache): implementations must be
	// safe for concurrent use and treat stored blocks as immutable.
	FillCache = ugraph.FillCache
	// FillKey identifies one cached 64-lane fill block: (content-versioned
	// graph identity, base seed, block index).
	FillKey = ugraph.FillKey
)

// NewWorldBatch returns an empty world batch of width V for a graph.
func NewWorldBatch[V Vec](g *Graph) *WorldBatch[V] { return ugraph.NewWorldBatch[V](g) }

// NewMaskBFS returns a mask-BFS of width V sized for n vertices.
func NewMaskBFS[V Vec](n int) *MaskBFS[V] { return queries.NewMaskBFS[V](n) }

// SampleWorldBatch redraws a batch so lane l is bit-identical to the world
// SampleWorldSeeded(seeds[l]) produces, at every width.
func SampleWorldBatch[V Vec](g *Graph, seeds []int64, b *WorldBatch[V]) {
	ugraph.SampleBatchSeeded(g, seeds, b)
}

var (
	// WithConfidence builds the MCOptions.Target for sequential stopping:
	// sample until every tracked estimate's CI half-width is ≤ eps at
	// confidence 1−delta.
	WithConfidence = mc.WithConfidence
	// ParseLanes resolves a -lanes flag value ("auto", "1", "64", "128",
	// "256") to the MCOptions.Lanes encoding.
	ParseLanes = mc.ParseLanes
	// FormatLanes is the inverse of ParseLanes.
	FormatLanes = mc.FormatLanes
	// ParseFanOut resolves a -fan-out flag value ("auto", "1".."64") to
	// the MCOptions.FanOut encoding: how many distinct query sources one
	// pair-estimator traversal carries.
	ParseFanOut = mc.ParseFanOut
	// FormatFanOut is the inverse of ParseFanOut.
	FormatFanOut = mc.FormatFanOut
)

// ReadLimits bounds the vertex/edge counts a text-format header may
// declare before parsing allocates anything: the strict zero-value
// default guards untrusted input (HTTP uploads), TrustedReadLimits admits
// binary-era graph sizes from local files.
type ReadLimits = ugraph.ReadLimits

// TrustedReadLimits admits anything the binary format could hold; used by
// ReadGraphFile for operator-chosen local files.
var TrustedReadLimits = ugraph.TrustedReadLimits

// Graph construction and I/O.
var (
	// NewGraph builds a graph from an edge list, validating endpoints and
	// probabilities.
	NewGraph = ugraph.New
	// NewBuilder returns a Builder for a graph with n vertices.
	NewBuilder = ugraph.NewBuilder
	// ReadGraph parses the text interchange format under the strict
	// untrusted-input limits.
	ReadGraph = ugraph.Read
	// ReadGraphWithLimits parses the text format under explicit limits.
	ReadGraphWithLimits = ugraph.ReadWithLimits
	// ReadGraphFile parses a graph file under TrustedReadLimits.
	ReadGraphFile = ugraph.ReadFile
	// WriteGraphFile writes a graph file.
	WriteGraphFile = ugraph.WriteFile
	// OpenMappedGraph opens a .ugsb binary graph as a read-only view
	// backed by a memory mapping: load = map + validate, zero parse. The
	// CSR accessors, sparsifiers and the query engine run directly over
	// mapped memory. Close the graph to release the mapping.
	OpenMappedGraph = ugraph.OpenMapped
	// OpenMappedGraphTrusted is OpenMappedGraph with header-only
	// validation (O(1) open) for files from trusted producers.
	OpenMappedGraphTrusted = ugraph.OpenMappedTrusted
	// WriteBinaryGraphFile writes a graph in the .ugsb binary format —
	// lossless, including p = 0 edges and exact probability bits.
	WriteBinaryGraphFile = ugraph.WriteBinaryFile
	// EdgeEntropy is the binary entropy of one edge probability.
	EdgeEntropy = ugraph.EdgeEntropy
	// RelativeEntropy is H(sparse)/H(original).
	RelativeEntropy = ugraph.RelativeEntropy
)

// Streaming edge updates (dynamic uncertain graphs).
type (
	// EdgeEdit is one streaming update: insert, delete or reweight an
	// undirected edge. Endpoint order does not matter.
	EdgeEdit = ugraph.EdgeEdit
	// EditOp enumerates the edit operations; its String form ("insert",
	// "delete", "reweight") round-trips through ParseEditOp.
	EditOp = ugraph.EditOp
	// EditError reports why an edit batch was rejected (batches are atomic).
	EditError = ugraph.EditError
	// EditResult is ApplyEdits' outcome: the post-edit graph plus the
	// old-to-new edge id mapping.
	EditResult = ugraph.EditResult
	// EditLog accumulates applied batches so a base graph plus the log
	// reconstructs the current graph (the patch log behind evict/reload).
	EditLog = ugraph.EditLog
	// Dynamic is an incrementally repairable sparsifier: Repair applies an
	// edit batch and restores the sparsified state with bounded work,
	// reproducing what a from-scratch replay of the same pipeline would
	// compute.
	Dynamic = core.Dynamic
	// DynOptions configures NewDynamic (GDB or EMD at k = 1 only).
	DynOptions = core.DynOptions
	// RepairStats reports one Repair call: dirty region size, sweeps run,
	// backbone churn and the resulting objective.
	RepairStats = core.RepairStats
)

// Edit operations.
const (
	// EditInsert adds a new edge with probability P.
	EditInsert = ugraph.EditInsert
	// EditDelete removes an existing edge.
	EditDelete = ugraph.EditDelete
	// EditReweight replaces an existing edge's probability with P.
	EditReweight = ugraph.EditReweight
)

var (
	// ApplyEdits applies an atomic edit batch to a graph, returning the
	// post-edit graph and the id mapping; the input is never modified.
	ApplyEdits = ugraph.ApplyEdits
	// ParseEditOp resolves "insert", "delete" or "reweight".
	ParseEditOp = ugraph.ParseEditOp
	// ReplayEdits applies a sequence of edit batches in order.
	ReplayEdits = ugraph.ReplayEdits
	// NewDynamic builds the initial sparsified state of a dynamic
	// sparsifier, keeping the optimizer state for later Repair calls.
	NewDynamic = core.NewDynamic
)

// WriteGraph writes g in the text interchange format.
func WriteGraph(w io.Writer, g *Graph) error { return ugraph.Write(w, g) }

// WriteBinaryGraph writes g in the .ugsb binary format.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return ugraph.WriteBinary(w, g) }

// Sparsification configuration (see internal/core for full documentation).
type (
	// Options configures the deprecated Sparsify shim.
	//
	// Deprecated: configure sparsifiers with functional options through
	// Lookup instead.
	Options = core.Options
	// Method enumerates the built-in sparsification methods; its String
	// form is the registry name.
	Method = core.Method
	// Discrepancy selects absolute or relative degree discrepancy.
	Discrepancy = core.Discrepancy
	// Backbone selects the backbone construction.
	Backbone = core.Backbone
	// RunStats is the uniform per-run statistics of every Sparsifier:
	// iteration counts, the final objective, and per-method diagnostics.
	RunStats = core.RunStats
)

// Sparsification methods and parameters.
const (
	// MethodGDB optimizes edge probabilities on a fixed backbone
	// (Algorithm 2).
	MethodGDB = core.MethodGDB
	// MethodEMD additionally restructures the backbone (Algorithm 3).
	MethodEMD = core.MethodEMD
	// MethodLP solves the optimal probability-assignment LP (Theorem 1);
	// small graphs only.
	MethodLP = core.MethodLP
	// MethodNI is the Nagamochi–Ibaraki cut-sparsifier benchmark.
	MethodNI = core.MethodNI
	// MethodSS is the Baswana–Sen spanner benchmark.
	MethodSS = core.MethodSS
	// Absolute discrepancy emphasizes high-degree vertices.
	Absolute = core.Absolute
	// Relative discrepancy treats all degrees equally.
	Relative = core.Relative
	// BackboneSpanning is Algorithm 1 (connected backbone).
	BackboneSpanning = core.BackboneSpanning
	// BackboneRandom samples the backbone by edge probability.
	BackboneRandom = core.BackboneRandom
	// KAll requests the k = n cut rule (global redistribution).
	KAll = core.KAll
	// HZero requests a true h = 0 entropy parameter.
	HZero = core.HZero
)

// Parse/format round-trips: each Parse function is the inverse of the
// corresponding String method, so flag and request values round-trip.
var (
	// ParseMethod resolves "gdb", "emd", "lp", "ni" or "ss" to a Method.
	ParseMethod = core.ParseMethod
	// ParseDiscrepancy resolves "absolute" or "relative".
	ParseDiscrepancy = core.ParseDiscrepancy
	// ParseBackbone resolves "spanning" or "random".
	ParseBackbone = core.ParseBackbone
)

// Sparsify reduces g to α·|E| edges using the configured method. The zero
// Options value selects GDB with the paper's recommended defaults.
//
// Deprecated: resolve a Sparsifier through Lookup instead, which supports
// every registered method (including NI and SS), context cancellation and
// progress reporting.
func Sparsify(g *Graph, alpha float64, opts Options) (*Graph, *RunStats, error) {
	return core.Sparsify(context.Background(), g, alpha, opts)
}

// MAEDegreeDiscrepancy is the mean absolute degree discrepancy between a
// graph and its sparsification.
func MAEDegreeDiscrepancy(orig, sparse *Graph, dt Discrepancy) float64 {
	return core.MAEDegreeDiscrepancy(orig, sparse, dt)
}

// MAECutDiscrepancy estimates the mean absolute expected-cut discrepancy on
// sampled vertex sets of cardinality 1..maxK.
func MAECutDiscrepancy(orig, sparse *Graph, maxK, cutsPerK int, rng *rand.Rand) float64 {
	return core.MAECutDiscrepancy(orig, sparse, maxK, cutsPerK, rng)
}

// NISparsify runs the Nagamochi–Ibaraki cut-sparsifier benchmark.
//
// Deprecated: use Lookup("ni", WithSeed(seed)) instead, which also returns
// run statistics and honors context cancellation.
func NISparsify(g *Graph, alpha float64, seed int64) (*Graph, error) {
	return benchmarkShim("ni", g, alpha, seed)
}

// SSSparsify runs the Baswana–Sen spanner benchmark.
//
// Deprecated: use Lookup("ss", WithSeed(seed)) instead, which also returns
// run statistics and honors context cancellation.
func SSSparsify(g *Graph, alpha float64, seed int64) (*Graph, error) {
	return benchmarkShim("ss", g, alpha, seed)
}

func benchmarkShim(name string, g *Graph, alpha float64, seed int64) (*Graph, error) {
	sp, err := Lookup(name, WithSeed(seed))
	if err != nil {
		return nil, err
	}
	res, err := sp.Sparsify(context.Background(), g, alpha)
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

// Monte-Carlo query evaluation.
type (
	// MCOptions configures sample counts, seeding and parallelism.
	MCOptions = mc.Options
	// StratifiedOptions configures the variance-reduced stratified
	// estimator (conditioning on the highest-entropy edges).
	StratifiedOptions = mc.StratifiedOptions
	// Pair is a source/target pair for SP and RL queries.
	Pair = queries.Pair
	// PageRankOptions tunes damping and power iterations.
	PageRankOptions = queries.PageRankOptions
)

// Every Monte-Carlo estimator takes a context.Context as its first argument
// and returns an error alongside its estimate: cancelling the context
// (timeout, request abort) stops the sampling run promptly, mirroring the
// Sparsifier interface's cancellation story. Estimates are deterministic
// given (graph, MCOptions.Seed) and bit-identical for every Workers value —
// the engine samples each world from a per-index seed and merges fixed
// accumulation blocks in index order.
//
// Reliability, ShortestDistance{,AndReliability} and ConnectedProbability
// run on the bit-parallel batch engine (WorldBatch + mask-BFS: one
// traversal answers a full lane vector of sampled worlds). MCOptions.Lanes
// selects the width — 64, 128 or 256 lanes, 1 for the scalar ablation, or
// 0 to let the planner choose — and MCOptions.Target switches from a fixed
// sample budget to sequential stopping. Every width and both fixed and
// adaptive schedules produce bit-identical estimates on the same seed.
var (
	// ExpectedPageRank estimates per-vertex expected PageRank.
	ExpectedPageRank = queries.ExpectedPageRank
	// ExpectedClusteringCoefficients estimates per-vertex expected local
	// clustering coefficients.
	ExpectedClusteringCoefficients = queries.ExpectedClusteringCoefficients
	// Reliability estimates per-pair reachability probability.
	Reliability = queries.Reliability
	// ShortestDistance estimates per-pair expected distance conditioned
	// on reachability.
	ShortestDistance = queries.ShortestDistance
	// ShortestDistanceAndReliability computes both in one MC pass.
	ShortestDistanceAndReliability = queries.ShortestDistanceAndReliability
	// ReliabilityRun is Reliability plus the run report (samples drawn,
	// adaptive rounds, convergence).
	ReliabilityRun = queries.ReliabilityRun
	// ShortestDistanceAndReliabilityRun adds the run report to the one-pass
	// SP+RL estimator.
	ShortestDistanceAndReliabilityRun = queries.ShortestDistanceAndReliabilityRun
	// ConnectedProbability estimates Pr[G is connected].
	ConnectedProbability = queries.ConnectedProbability
	// ConnectedProbabilityRun adds the run report to ConnectedProbability.
	ConnectedProbabilityRun = queries.ConnectedProbabilityRun
	// RandomPairs draws random query pairs.
	RandomPairs = queries.RandomPairs
	// ExactProbabilityOf evaluates a world predicate exactly by
	// exhaustive enumeration (tiny graphs).
	ExactProbabilityOf = mc.ExactProbabilityOf
	// StratifiedProbabilityOf estimates Pr[pred] with stratified
	// sampling over the highest-entropy edges: unbiased, with variance
	// at most plain Monte-Carlo's for the same budget.
	StratifiedProbabilityOf = mc.StratifiedProbabilityOf
)

// Evaluation statistics.
var (
	// EarthMovers is the earth mover's distance between two observation
	// samples (Equation 17).
	EarthMovers = stats.EarthMovers
	// MAE is the mean absolute error between paired observations.
	MAE = stats.MAE
	// EstimatorVariance reports the mean and unbiased variance of a
	// repeated Monte-Carlo estimator.
	EstimatorVariance = stats.EstimatorVariance
	// SamplesForWidth converts an estimator's σ into the MC sample count
	// needed for a target 95% confidence width.
	SamplesForWidth = stats.SamplesForWidth
)

// Representative instances (the prior approach of [29, 30], Section 2.3):
// deterministic graphs with preserved expected degrees. Provided as a
// comparator — representatives answer deterministic queries cheaply but
// cannot answer probabilistic ones, unlike sparsified uncertain graphs.
var (
	// ExpectedDegreeRepresentative extracts a zero-entropy deterministic
	// representative by rounding plus greedy rewiring.
	ExpectedDegreeRepresentative = repr.ExpectedDegreeRepresentative
	// MostProbableWorld rounds every edge at p ≥ 0.5.
	MostProbableWorld = repr.MostProbableWorld
)

// RepresentativeOptions tunes representative extraction.
type RepresentativeOptions = repr.Options

// Synthetic dataset generation.
type SocialConfig = gen.SocialConfig

var (
	// GenerateSocial builds a Chung–Lu power-law uncertain graph.
	GenerateSocial = gen.Social
	// FlickrLike and TwitterLike are the presets used by the experiment
	// harness in place of the paper's datasets.
	FlickrLike  = gen.FlickrLike
	TwitterLike = gen.TwitterLike
	// Densify adds random edges up to a density target (the paper's
	// synthetic family).
	Densify = gen.Densify
	// ForestFire samples an induced subgraph by the forest-fire process.
	ForestFire = gen.ForestFire
	// StreamSocial generates a Chung–Lu power-law graph straight into a
	// .ugsb file in O(N) memory — the million-edge corpus path.
	StreamSocial = gen.StreamSocial
)
