package ugs_test

import (
	"context"
	"encoding/json"
	"testing"

	"ugs"
)

func TestSpecKeyCanonicalizesDefaults(t *testing.T) {
	implicit := ugs.Spec{Method: "gdb", Seed: 3}
	explicit := ugs.Spec{
		Method:      "gdb",
		Discrepancy: "absolute",
		Backbone:    "spanning",
		CutOrder:    1,
		Seed:        3,
	}
	if implicit.Key() != explicit.Key() {
		t.Errorf("default spelled out changes key:\n%s\n%s", implicit.Key(), explicit.Key())
	}
	dense := implicit
	dense.DenseSweeps = true
	if dense.Key() != implicit.Key() {
		t.Errorf("DenseSweeps (output-identical ablation) changes key:\n%s\n%s", dense.Key(), implicit.Key())
	}
}

func TestSpecKeySeparatesDistinctConfigs(t *testing.T) {
	base := ugs.Spec{Method: "gdb", Seed: 1}
	h := 0.0
	variants := []ugs.Spec{
		{Method: "emd", Seed: 1},
		{Method: "gdb", Seed: 2},
		{Method: "gdb", Seed: 1, Discrepancy: "relative"},
		{Method: "gdb", Seed: 1, Backbone: "random"},
		{Method: "gdb", Seed: 1, CutOrder: 2},
		{Method: "gdb", Seed: 1, CutOrder: ugs.KAll},
		{Method: "gdb", Seed: 1, Entropy: &h},
		{Method: "gdb", Seed: 1, Tau: 1e-3},
		{Method: "gdb", Seed: 1, MaxIters: 5},
	}
	seen := map[string]int{base.Key(): -1}
	for i, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: %s", i, prev, k)
		}
		seen[k] = i
	}
}

func TestSpecOptionsValidation(t *testing.T) {
	bad := []ugs.Spec{
		{},                                       // missing method
		{Method: "gdb", Discrepancy: "sideways"}, // unknown discrepancy
		{Method: "gdb", Backbone: "wishbone"},    // unknown backbone
		{Method: "gdb", CutOrder: -7},            // invalid cut order
		{Method: "gdb", Entropy: float64p(1.5)},  // h outside [0,1]
		{Method: "gdb", Tau: -1},                 // non-positive tau
		{Method: "gdb", MaxIters: -2},            // negative iteration bound
	}
	for i, s := range bad {
		if _, err := s.Options(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	if _, err := (ugs.Spec{Method: "nope"}).Sparsifier(); err == nil {
		t.Error("unknown method resolved")
	}
}

// TestSpecSparsifierMatchesHandWrittenOptions pins the contract behind the
// serve cache: a Spec-built sparsifier is bit-identical to the same
// configuration written as functional options, and to itself across runs.
func TestSpecSparsifierMatchesHandWrittenOptions(t *testing.T) {
	g := ugs.TwitterLike(90, 5)
	spec := ugs.Spec{Method: "emd", Discrepancy: "relative", Seed: 4}
	fromSpec, err := spec.Sparsifier()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ugs.Lookup("emd", ugs.WithDiscrepancy(ugs.Relative), ugs.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := fromSpec.Sparsify(ctx, g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := direct.Sparsify(ctx, g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Error("Spec-built sparsifier differs from hand-written options")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	h := 0.0
	s := ugs.Spec{Method: "gdb", CutOrder: 2, Entropy: &h, Seed: 9}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ugs.Spec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != s.Key() {
		t.Errorf("JSON round trip changes key:\n%s\n%s", back.Key(), s.Key())
	}
}

func float64p(v float64) *float64 { return &v }

// FuzzSpecKey exercises the wire boundary of the serve cache: arbitrary
// JSON must never panic Spec decoding, and any decodable Spec must have a
// deterministic Key and a non-panicking Options validation.
func FuzzSpecKey(f *testing.F) {
	f.Add([]byte(`{"method":"gdb","seed":3}`))
	f.Add([]byte(`{"method":"emd","discrepancy":"relative","cut_order":1}`))
	f.Add([]byte(`{"method":"gdb","entropy":0,"tau":1e-9,"max_iters":200}`))
	f.Add([]byte(`{"method":"","backbone":"random"}`))
	f.Add([]byte(`{"method":"gdb","cut_order":-1}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, blob []byte) {
		var s ugs.Spec
		if err := json.Unmarshal(blob, &s); err != nil {
			return
		}
		k1, k2 := s.Key(), s.Key()
		if k1 != k2 {
			t.Fatalf("Key not deterministic: %q vs %q", k1, k2)
		}
		opts, err := s.Options()
		if err == nil && len(opts) == 0 {
			t.Fatal("valid Spec produced no options (seed must always be set)")
		}
	})
}
