// Socialrank demonstrates influence analysis on an uncertain social network:
// edge probabilities model influence between users (as in the paper's
// Twitter dataset), and expected PageRank ranks the most influential users.
//
// The network is sparsified to 20% of its edges and the example shows that
// the top-influencer ranking survives — while every Monte-Carlo sample
// costs a fifth as much.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"ugs"
)

func main() {
	soc := ugs.TwitterLike(400, 3)
	fmt.Printf("network:    %v\n", soc)

	ctx := context.Background()
	emd, err := ugs.Lookup("emd", ugs.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := emd.Sparsify(ctx, soc, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	sparse := res.Graph
	fmt.Printf("sparsified: %v\n\n", sparse)

	opts := ugs.MCOptions{Samples: 300, Seed: 5}
	prOrig, err := ugs.ExpectedPageRank(ctx, soc, opts, ugs.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	prSparse, err := ugs.ExpectedPageRank(ctx, sparse, opts, ugs.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-10 users by expected PageRank:")
	fmt.Println("  rank  user  PR(original)  PR(sparsified)  rank(sparsified)")
	origOrder := ranked(prOrig)
	sparseRank := make(map[int]int)
	for r, v := range ranked(prSparse) {
		sparseRank[v] = r + 1
	}
	for r, v := range origOrder[:10] {
		fmt.Printf("  %4d  %4d  %.5f       %.5f         %d\n",
			r+1, v, prOrig[v], prSparse[v], sparseRank[v])
	}

	// Distribution-level agreement: earth mover's distance between the
	// PageRank distributions (the paper's Figure 10 metric).
	fmt.Printf("\nD_em(PageRank) = %.3g\n", ugs.EarthMovers(prOrig, prSparse))
}

func ranked(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	return order
}
