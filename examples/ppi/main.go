// PPI demonstrates sparsification of a protein–protein interaction style
// network, where edge probabilities reflect the confidence of error-prone
// laboratory measurements (the paper's biological-database motivation).
//
// The analysis task is the expected local clustering coefficient, a proxy
// for protein-complex membership. The example compares how well each
// sparsifier — the paper's EMD and GDB versus the deterministic-adaptation
// benchmarks NI and SS — preserves it at α = 25%.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"ugs"
)

func main() {
	// Interaction networks are mid-density with moderately confident
	// edges; clustering into complexes is the salient structure.
	ppi, err := ugs.GenerateSocial(ugs.SocialConfig{
		N: 350, AvgDegree: 18, MeanProb: 0.4, Exponent: 2.2, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %v\n\n", ppi)

	ctx := context.Background()
	opts := ugs.MCOptions{Samples: 200, Seed: 17}
	ccBase, err := ugs.ExpectedClusteringCoefficients(ctx, ppi, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Every sparsifier goes through the same registry interface; only the
	// per-method options differ. Adding a method to the comparison is one
	// more row here — the loop body never changes.
	const alpha = 0.25
	methods := []struct {
		name string
		opts []ugs.Option
	}{
		{"emd", []ugs.Option{ugs.WithDiscrepancy(ugs.Relative)}},
		{"gdb", nil},
		{"ni", nil},
		{"ss", nil},
	}

	fmt.Printf("clustering-coefficient preservation at α = %.0f%%:\n", alpha*100)
	fmt.Println("  method  D_em(CC)   MAE(CC)    rel.entropy")
	for _, m := range methods {
		sp, err := ugs.Lookup(m.name, append(m.opts, ugs.WithSeed(13))...)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		res, err := sp.Sparsify(ctx, ppi, alpha)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		cc, err := ugs.ExpectedClusteringCoefficients(ctx, res.Graph, opts)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		fmt.Printf("  %-6s  %.4g   %.4g   %.3f\n",
			strings.ToUpper(sp.Name()),
			ugs.EarthMovers(ccBase, cc),
			ugs.MAE(ccBase, cc),
			ugs.RelativeEntropy(res.Graph, ppi))
	}
	fmt.Println("\nlower is better in all three columns. CC is the benchmarks'")
	fmt.Println("best case (the paper notes NI approximates CC well); the decisive")
	fmt.Println("column is relative entropy — EMD/GDB retain a fraction of the")
	fmt.Println("uncertainty, so their Monte-Carlo estimates need far fewer samples")
	fmt.Println("for the same confidence (σ²-proportional, Section 6.3).")
}
