// PPI demonstrates sparsification of a protein–protein interaction style
// network, where edge probabilities reflect the confidence of error-prone
// laboratory measurements (the paper's biological-database motivation).
//
// The analysis task is the expected local clustering coefficient, a proxy
// for protein-complex membership. The example compares how well each
// sparsifier — the paper's EMD and GDB versus the deterministic-adaptation
// benchmarks NI and SS — preserves it at α = 25%.
package main

import (
	"fmt"
	"log"

	"ugs"
)

func main() {
	// Interaction networks are mid-density with moderately confident
	// edges; clustering into complexes is the salient structure.
	ppi, err := ugs.GenerateSocial(ugs.SocialConfig{
		N: 350, AvgDegree: 18, MeanProb: 0.4, Exponent: 2.2, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %v\n\n", ppi)

	opts := ugs.MCOptions{Samples: 200, Seed: 17}
	ccBase := ugs.ExpectedClusteringCoefficients(ppi, opts)

	const alpha = 0.25
	type result struct {
		name string
		g    *ugs.Graph
		err  error
	}
	var results []result

	emd, _, err := ugs.Sparsify(ppi, alpha, ugs.Options{Method: ugs.MethodEMD, Discrepancy: ugs.Relative, Seed: 13})
	results = append(results, result{"EMD", emd, err})
	gdb, _, err := ugs.Sparsify(ppi, alpha, ugs.Options{Method: ugs.MethodGDB, Seed: 13})
	results = append(results, result{"GDB", gdb, err})
	nig, err := ugs.NISparsify(ppi, alpha, 13)
	results = append(results, result{"NI", nig, err})
	ssg, err := ugs.SSSparsify(ppi, alpha, 13)
	results = append(results, result{"SS", ssg, err})

	fmt.Printf("clustering-coefficient preservation at α = %.0f%%:\n", alpha*100)
	fmt.Println("  method  D_em(CC)   MAE(CC)    rel.entropy")
	for _, r := range results {
		if r.err != nil {
			log.Fatalf("%s: %v", r.name, r.err)
		}
		cc := ugs.ExpectedClusteringCoefficients(r.g, opts)
		fmt.Printf("  %-6s  %.4g   %.4g   %.3f\n",
			r.name,
			ugs.EarthMovers(ccBase, cc),
			ugs.MAE(ccBase, cc),
			ugs.RelativeEntropy(r.g, ppi))
	}
	fmt.Println("\nlower is better in all three columns. CC is the benchmarks'")
	fmt.Println("best case (the paper notes NI approximates CC well); the decisive")
	fmt.Println("column is relative entropy — EMD/GDB retain a fraction of the")
	fmt.Println("uncertainty, so their Monte-Carlo estimates need far fewer samples")
	fmt.Println("for the same confidence (σ²-proportional, Section 6.3).")
}
