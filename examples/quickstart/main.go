// Quickstart reproduces the paper's introductory example (Figure 1): the
// complete graph on four vertices with all edge probabilities 0.3 is
// sparsified to half its edges, and the probability that the graph is
// connected — a query that requires possible-world semantics — is compared
// before and after.
package main

import (
	"context"
	"fmt"
	"log"

	"ugs"
)

func main() {
	// Build the Figure 1(a) uncertain graph: K4 with p = 0.3 everywhere.
	b := ugs.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				log.Fatal(err)
			}
		}
	}
	g := b.Graph()

	// Exact evaluation by exhaustive possible-world enumeration (2^6
	// worlds): the paper reports Pr[connected] = 0.219.
	exact := ugs.ExactProbabilityOf(g, func(w *ugs.World) bool { return w.IsConnected() })
	fmt.Printf("original:   %v\n", g)
	fmt.Printf("  Pr[connected] = %.3f (paper: 0.219)\n", exact)
	fmt.Printf("  entropy       = %.2f bits\n", g.Entropy())

	// Sparsify to α = 0.5 (three edges) with GDB, resolved by name from
	// the method registry. The probabilities of the remaining edges rise
	// to compensate for the removed ones.
	gdb, err := ugs.Lookup("gdb",
		ugs.WithEntropy(1), // favor accuracy in this tiny demo
		ugs.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gdb.Sparsify(context.Background(), g, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sparse := res.Graph
	exactSparse := ugs.ExactProbabilityOf(sparse, func(w *ugs.World) bool { return w.IsConnected() })
	fmt.Printf("sparsified: %v (GDB, %d iterations)\n", sparse, res.Stats.Iterations)
	for _, e := range sparse.Edges() {
		fmt.Printf("  edge (%d,%d) p=%.2f\n", e.U, e.V, e.P)
	}
	fmt.Printf("  Pr[connected] = %.3f (paper's example: 0.216)\n", exactSparse)
	fmt.Printf("  entropy       = %.2f bits (%.0f%% of original)\n",
		sparse.Entropy(), 100*ugs.RelativeEntropy(sparse, g))

	// The sparsified graph answers the same query with a fraction of the
	// sampling cost: fewer edges per sample and fewer samples needed.
	fmt.Printf("\nquery error: %.4f\n", exact-exactSparse)
}
