// Netreliability demonstrates sparsification for communication-network
// reliability analysis — the paper's motivating application where each link
// carries a probability of not failing.
//
// A router mesh is generated, sparsified to a quarter of its links with EMD,
// and two-terminal reliability (the probability that a route exists between
// endpoints) is estimated on both graphs. The example also shows the
// variance payoff: the sparsified graph's estimator needs fewer Monte-Carlo
// samples for the same confidence width.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"ugs"
)

func main() {
	// A mesh-like network: power-law core with redundant links, fairly
	// reliable channels (E[p] ≈ 0.7 after clipping).
	net, err := ugs.GenerateSocial(ugs.SocialConfig{
		N: 300, AvgDegree: 12, MeanProb: 0.7, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network:    %v  entropy=%.1f bits\n", net, net.Entropy())

	// Resolve EMD from the registry. The progress callback makes the run
	// observable (each EM round reports its objective), and the timeout
	// context would abort a run that outgrows its operational budget —
	// both essential once sparsification serves live traffic.
	emd, err := ugs.Lookup("emd",
		ugs.WithDiscrepancy(ugs.Relative),
		ugs.WithSeed(7),
		ugs.WithProgress(func(s ugs.RunStats) {
			fmt.Fprintf(os.Stderr, "  round %d: D1=%.4g swaps=%d\n",
				s.Iterations, s.ObjectiveD1, s.Swaps)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := emd.Sparsify(ctx, net, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	sparse := res.Graph
	fmt.Printf("sparsified: %v  entropy=%.1f bits (%.0f%%)\n\n",
		sparse, sparse.Entropy(), 100*ugs.RelativeEntropy(sparse, net))

	// Two-terminal reliability on 8 random endpoint pairs. The estimators
	// share the sparsifier's cancellation story: the same timeout context
	// bounds the Monte-Carlo runs.
	rng := rand.New(rand.NewSource(7))
	pairs := ugs.RandomPairs(net.NumVertices(), 8, rng)
	opts := ugs.MCOptions{Samples: 2000, Seed: 11}
	rOrig, err := ugs.Reliability(ctx, net, pairs, opts)
	if err != nil {
		log.Fatal(err)
	}
	rSparse, err := ugs.Reliability(ctx, sparse, pairs, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two-terminal reliability (2000-sample MC):")
	fmt.Println("  pair          original  sparsified")
	for i, p := range pairs {
		fmt.Printf("  %4d -> %-4d   %.3f     %.3f\n", p.S, p.T, rOrig[i], rSparse[i])
	}

	// Variance payoff: repeat a 200-sample estimator 20 times on each
	// graph and compare the sample counts needed for a ±0.01 confidence
	// width on mean reliability.
	estimate := func(g *ugs.Graph) func(run int) float64 {
		return func(run int) float64 {
			r, err := ugs.Reliability(ctx, g, pairs, ugs.MCOptions{Samples: 200, Seed: int64(run) * 101})
			if err != nil {
				log.Fatal(err)
			}
			var sum float64
			for _, x := range r {
				sum += x
			}
			return sum / float64(len(r))
		}
	}
	_, varOrig := ugs.EstimatorVariance(20, estimate(net))
	_, varSparse := ugs.EstimatorVariance(20, estimate(sparse))
	fmt.Printf("\nestimator variance: original=%.3g sparsified=%.3g (ratio %.2f)\n",
		varOrig, varSparse, varSparse/varOrig)
}
