package ugs_test

// Testable godoc examples for the public API.

import (
	"context"
	"fmt"
	"log"

	"ugs"
)

// ExampleLookup sparsifies the paper's introductory graph (Figure 1: the
// complete graph K4 with all probabilities 0.3) to half its edges with a
// registry-resolved sparsifier.
func ExampleLookup() {
	b := ugs.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				log.Fatal(err)
			}
		}
	}
	g := b.Graph()

	sp, err := ugs.Lookup("gdb", ugs.WithEntropy(1), ugs.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sp.Sparsify(context.Background(), g, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edges: %d -> %d\n", g.NumEdges(), res.Graph.NumEdges())
	fmt.Printf("entropy reduced: %v\n", res.Graph.Entropy() < g.Entropy())
	// Output:
	// edges: 6 -> 3
	// entropy reduced: true
}

// ExampleExactProbabilityOf evaluates Pr[G is connected] exactly by
// possible-world enumeration — the paper reports 0.219 for this graph.
func ExampleExactProbabilityOf() {
	b := ugs.NewBuilder(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v, 0.3); err != nil {
				log.Fatal(err)
			}
		}
	}
	g := b.Graph()
	pr := ugs.ExactProbabilityOf(g, func(w *ugs.World) bool { return w.IsConnected() })
	fmt.Printf("Pr[connected] = %.3f\n", pr)
	// Output:
	// Pr[connected] = 0.219
}

// ExampleReliability estimates two-terminal reliability on a small chain of
// redundant links.
func ExampleReliability() {
	g, err := ugs.NewGraph(3, []ugs.Edge{
		{U: 0, V: 1, P: 0.5},
		{U: 1, V: 2, P: 0.5},
		{U: 0, V: 2, P: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	rel, err := ugs.Reliability(context.Background(), g, []ugs.Pair{{S: 0, T: 2}}, ugs.MCOptions{Samples: 20000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Exact value: 1 − (1−0.5)(1−0.25) = 0.625.
	fmt.Printf("reliability ≈ %.2f\n", rel[0])
	// Output:
	// reliability ≈ 0.63
}

// ExampleEarthMovers compares two result distributions with the metric of
// the paper's Figure 10.
func ExampleEarthMovers() {
	a := []float64{0.1, 0.2, 0.3}
	b := []float64{0.2, 0.3, 0.4} // a shifted by 0.1
	fmt.Printf("D_em = %.2f\n", ugs.EarthMovers(a, b))
	// Output:
	// D_em = 0.10
}

// ExampleExpectedDegreeRepresentative contrasts representative instances
// (the prior approach) with sparsification: the representative is
// deterministic, so probabilistic queries collapse to 0/1.
func ExampleExpectedDegreeRepresentative() {
	g, err := ugs.NewGraph(3, []ugs.Edge{
		{U: 0, V: 1, P: 0.9},
		{U: 1, V: 2, P: 0.9},
		{U: 0, V: 2, P: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := ugs.ExpectedDegreeRepresentative(g, ugs.RepresentativeOptions{})
	fmt.Printf("representative edges: %d, entropy: %.0f\n", rep.NumEdges(), rep.Entropy())
	// Output:
	// representative edges: 2, entropy: 0
}
