package ugs_test

// Integration tests of the public API: the full pipeline a downstream user
// runs — generate or load a graph, sparsify it, evaluate queries on both
// graphs, and compare distributions.

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"ugs"
)

// must unwraps an estimator's (value, error) pair where the error can only
// come from context cancellation, which these tests never trigger.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// must2 is must for the two-value ShortestDistanceAndReliability estimator.
func must2[A, B any](a A, b B, err error) (A, B) {
	if err != nil {
		panic(err)
	}
	return a, b
}

func TestEndToEndPipelineAllMethods(t *testing.T) {
	g := ugs.TwitterLike(150, 7)
	rng := rand.New(rand.NewSource(7))
	pairs := ugs.RandomPairs(g.NumVertices(), 40, rng)
	opts := ugs.MCOptions{Samples: 60, Seed: 9}

	ctx := context.Background()
	prBase := must(ugs.ExpectedPageRank(ctx, g, opts, ugs.PageRankOptions{}))
	spBase, rlBase := must2(ugs.ShortestDistanceAndReliability(ctx, g, pairs, opts))
	ccBase := must(ugs.ExpectedClusteringCoefficients(ctx, g, opts))

	type method struct {
		name string
		opts []ugs.Option
	}
	methods := []method{
		{"gdb", nil},
		{"emd", []ugs.Option{ugs.WithDiscrepancy(ugs.Relative)}},
		{"ni", nil},
		{"ss", nil},
	}

	for _, m := range methods {
		m := m
		t.Run(m.name, func(t *testing.T) {
			sparsifier, err := ugs.Lookup(m.name, append(m.opts, ugs.WithSeed(1))...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sparsifier.Sparsify(context.Background(), g, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			sparse := res.Graph
			if sparse.NumEdges() >= g.NumEdges() {
				t.Fatal("no sparsification happened")
			}

			pr := must(ugs.ExpectedPageRank(ctx, sparse, opts, ugs.PageRankOptions{}))
			sp, rl := must2(ugs.ShortestDistanceAndReliability(ctx, sparse, pairs, opts))
			cc := must(ugs.ExpectedClusteringCoefficients(ctx, sparse, opts))

			for name, d := range map[string]float64{
				"PR": ugs.EarthMovers(prBase, pr),
				"SP": ugs.EarthMovers(spBase, sp),
				"RL": ugs.EarthMovers(rlBase, rl),
				"CC": ugs.EarthMovers(ccBase, cc),
			} {
				if math.IsNaN(d) || d < 0 {
					t.Errorf("%s: D_em = %v", name, d)
				}
			}
		})
	}
}

func TestProposedMethodsBeatBenchmarksOnDegrees(t *testing.T) {
	// The paper's headline: GDB/EMD preserve expected degrees far better
	// than the deterministic adaptations (Figure 6).
	g := ugs.FlickrLike(200, 11)
	const alpha = 0.16
	gdb, _, err := ugs.Sparsify(g, alpha, ugs.Options{Method: ugs.MethodGDB, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	nig, err := ugs.NISparsify(g, alpha, 2)
	if err != nil {
		t.Fatal(err)
	}
	ssg, err := ugs.SSSparsify(g, alpha, 2)
	if err != nil {
		t.Fatal(err)
	}
	gdbMAE := ugs.MAEDegreeDiscrepancy(g, gdb, ugs.Absolute)
	niMAE := ugs.MAEDegreeDiscrepancy(g, nig, ugs.Absolute)
	ssMAE := ugs.MAEDegreeDiscrepancy(g, ssg, ugs.Absolute)
	if gdbMAE >= niMAE {
		t.Errorf("GDB MAE %v not below NI %v", gdbMAE, niMAE)
	}
	if gdbMAE >= ssMAE {
		t.Errorf("GDB MAE %v not below SS %v", gdbMAE, ssMAE)
	}
}

func TestEntropyReductionLowersVariance(t *testing.T) {
	// Section 6.3: entropy reduction lowers MC-estimator variance,
	// shrinking the samples needed for a given confidence width.
	g := ugs.FlickrLike(150, 13)
	sparse, _, err := ugs.Sparsify(g, 0.16, ugs.Options{Method: ugs.MethodGDB, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ugs.RelativeEntropy(sparse, g) >= 1 {
		t.Fatalf("entropy not reduced: ratio %v", ugs.RelativeEntropy(sparse, g))
	}
	rng := rand.New(rand.NewSource(13))
	pairs := ugs.RandomPairs(g.NumVertices(), 30, rng)
	est := func(target *ugs.Graph) func(int) float64 {
		return func(run int) float64 {
			rl := must(ugs.Reliability(context.Background(), target, pairs, ugs.MCOptions{Samples: 40, Seed: int64(run)*31 + 1}))
			var s float64
			for _, x := range rl {
				s += x
			}
			return s / float64(len(rl))
		}
	}
	_, varOrig := ugs.EstimatorVariance(12, est(g))
	_, varSparse := ugs.EstimatorVariance(12, est(sparse))
	// The sparsified estimator should not need more samples; allow slack
	// for MC noise at test scale.
	if varSparse > 3*varOrig {
		t.Errorf("sparsified variance %v far above original %v", varSparse, varOrig)
	}
	if n := ugs.SamplesForWidth(math.Sqrt(varSparse), 0.01); n <= 0 {
		t.Errorf("SamplesForWidth = %d", n)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := ugs.TwitterLike(60, 17)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := ugs.WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ugs.ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Error("facade round trip mismatch")
	}
}

func TestSparsifyPreservesConnectivityWithSpanningBackbone(t *testing.T) {
	g := ugs.FlickrLike(150, 19)
	if !g.IsConnected() {
		t.Fatal("generator returned disconnected graph")
	}
	sparse, _, err := ugs.Sparsify(g, 0.1, ugs.Options{
		Method:   ugs.MethodGDB,
		Backbone: ugs.BackboneSpanning,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsConnected() {
		t.Error("spanning backbone did not preserve connectivity")
	}
}

func TestSparsifiedOutputWithZeroProbEdgeRoundTripsAndResparsifies(t *testing.T) {
	// Regression for the ROADMAP wart: sparsifiers can drive an edge's
	// probability to exactly 0 (the ⌊0·⌉1 clamp), and such graphs used to
	// be unreadable by a second Sparsify pass. Write now drops p = 0
	// edges, so write → read → Sparsify must succeed.
	g := ugs.TwitterLike(80, 21)
	g.SetProb(0, 0) // emulate a sparsifier output retaining a dead edge
	path := filepath.Join(t.TempDir(), "sparse.txt")
	if err := ugs.WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ugs.ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("re-read graph has %d edges, want %d (p=0 edge dropped)", back.NumEdges(), g.NumEdges()-1)
	}
	sp, err := ugs.Lookup("gdb", ugs.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Sparsify(context.Background(), back, 0.5)
	if err != nil {
		t.Fatalf("re-sparsifying a written sparsifier output failed: %v", err)
	}
	if res.Graph.NumEdges() >= back.NumEdges() {
		t.Error("second sparsification pass did not reduce the edge count")
	}
}
