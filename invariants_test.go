package ugs_test

// Property-based invariant tests: every registered sparsifier, on a table
// of random graphs, must satisfy the method-independent contract of the
// Sparsifier interface. New registrations are picked up automatically
// through ugs.Methods().

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ugs"
	"ugs/internal/gen"
)

// invariantGraphs is the table of random inputs. LP solves a linear program
// with one variable per edge, so it only runs on the graphs marked small.
var invariantGraphs = []struct {
	name  string
	small bool
	build func() *ugs.Graph
}{
	{"social-40", true, func() *ugs.Graph {
		g, err := gen.Social(gen.SocialConfig{N: 40, AvgDegree: 6, MeanProb: 0.2, Seed: 101})
		if err != nil {
			panic(err)
		}
		return g
	}},
	{"social-sparse-35", true, func() *ugs.Graph {
		g, err := gen.Social(gen.SocialConfig{N: 35, AvgDegree: 4, MeanProb: 0.5, Seed: 202})
		if err != nil {
			panic(err)
		}
		return g
	}},
	{"twitter-150", false, func() *ugs.Graph { return gen.TwitterLike(150, 303) }},
	{"flickr-120", false, func() *ugs.Graph { return gen.FlickrLike(120, 404) }},
	{"densified-60", false, func() *ugs.Graph {
		base, err := gen.Social(gen.SocialConfig{N: 60, AvgDegree: 8, MeanProb: 0.15, Seed: 505})
		if err != nil {
			panic(err)
		}
		g, err := gen.Densify(base, 0.2, 0.15, 506)
		if err != nil {
			panic(err)
		}
		return g
	}},
}

// TestSparsifierInvariantsAllMethods checks, for every registered method ×
// every table graph × two ratios:
//
//  1. the vertex set is preserved (same dense 0..n-1 identifiers),
//  2. every output probability lies in [0, 1],
//  3. the output has at most ⌈α|E|⌉ edges and strictly fewer than |E|,
//  4. a fixed seed gives bit-identical output across two runs.
func TestSparsifierInvariantsAllMethods(t *testing.T) {
	ctx := context.Background()
	for _, method := range ugs.Methods() {
		for _, tg := range invariantGraphs {
			if method == "lp" && !tg.small {
				continue
			}
			g := tg.build()
			for _, alpha := range []float64{0.2, 0.45} {
				t.Run(fmt.Sprintf("%s/%s/a%.2f", method, tg.name, alpha), func(t *testing.T) {
					t.Parallel()
					sp, err := ugs.Lookup(method, ugs.WithSeed(7))
					if err != nil {
						t.Fatal(err)
					}
					res, err := sp.Sparsify(ctx, g, alpha)
					if err != nil {
						t.Fatal(err)
					}
					out := res.Graph

					if out.NumVertices() != g.NumVertices() {
						t.Errorf("vertex set not preserved: %d != %d", out.NumVertices(), g.NumVertices())
					}
					for id := 0; id < out.NumEdges(); id++ {
						if p := out.Prob(id); !(p >= 0 && p <= 1) || math.IsNaN(p) {
							t.Fatalf("edge %d probability %v outside [0,1]", id, p)
						}
					}
					if budget := int(math.Ceil(alpha * float64(g.NumEdges()))); out.NumEdges() > budget {
						t.Errorf("edge count %d above budget ⌈α|E|⌉ = %d", out.NumEdges(), budget)
					}
					if out.NumEdges() >= g.NumEdges() {
						t.Errorf("no sparsification: %d of %d edges kept", out.NumEdges(), g.NumEdges())
					}
					for id := 0; id < out.NumEdges(); id++ {
						e := out.Edge(id)
						if !g.HasEdge(e.U, e.V) {
							t.Fatalf("output edge (%d,%d) not present in the input", e.U, e.V)
						}
					}

					rerun, err := sp.Sparsify(ctx, g, alpha)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Graph.Equal(rerun.Graph) {
						t.Error("same seed not bit-identical across two runs")
					}
				})
			}
		}
	}
}
