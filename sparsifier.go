package ugs

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ugs/internal/core"
	"ugs/internal/ni"
	"ugs/internal/spanner"
)

// Result is the uniform output of every Sparsifier: the sparsified uncertain
// graph and the statistics of the run that produced it.
type Result struct {
	Graph *Graph
	Stats RunStats
}

// Sparsifier is the uniform interface implemented by every sparsification
// method. A Sparsifier is immutable once built — configuration happens
// through the Options passed to Lookup (or a Factory) — so one value is safe
// for concurrent use across goroutines and requests.
type Sparsifier interface {
	// Name returns the registry name the sparsifier was built under
	// ("gdb", "emd", "lp", "ni", "ss", or a custom registration).
	Name() string
	// Sparsify reduces g to α·|E| edges, α ∈ (0, 1), without modifying g.
	// Cancelling ctx aborts the run promptly and returns the context's
	// error.
	Sparsify(ctx context.Context, g *Graph, alpha float64) (*Result, error)
}

// Factory builds a configured Sparsifier from functional options. It
// returns an error if an option is invalid or inconsistent with the method.
type Factory func(opts ...Option) (Sparsifier, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register adds a sparsifier factory under a method name, making it
// resolvable through Lookup and listed by Methods. It errors if the name is
// empty, already taken, or the factory is nil. Packages providing new
// methods typically call MustRegister from an init function.
func Register(name string, factory Factory) error {
	if name == "" {
		return fmt.Errorf("ugs: Register with empty method name")
	}
	if factory == nil {
		return fmt.Errorf("ugs: Register %q with nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("ugs: method %q already registered", name)
	}
	registry[name] = factory
	return nil
}

// MustRegister is Register, panicking on error.
func MustRegister(name string, factory Factory) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// Lookup resolves a method name to a Sparsifier configured with the given
// options. Unknown names list the registered alternatives in the error.
func Lookup(name string, opts ...Option) (Sparsifier, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ugs: unknown method %q (registered: %v)", name, Methods())
	}
	return factory(opts...)
}

// Methods returns the registered method names in sorted order.
func Methods() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewSparsifier adapts a function to the Sparsifier interface under the
// given name. It is the building block for custom registrations:
//
//	ugs.MustRegister("my-method", func(opts ...ugs.Option) (ugs.Sparsifier, error) {
//		return ugs.NewSparsifier("my-method", run), nil
//	})
func NewSparsifier(name string, run func(ctx context.Context, g *Graph, alpha float64) (*Result, error)) Sparsifier {
	return &funcSparsifier{name: name, run: run}
}

type funcSparsifier struct {
	name string
	run  func(ctx context.Context, g *Graph, alpha float64) (*Result, error)
}

func (s *funcSparsifier) Name() string { return s.name }

func (s *funcSparsifier) Sparsify(ctx context.Context, g *Graph, alpha float64) (*Result, error) {
	return s.run(ctx, g, alpha)
}

// The five paper methods register themselves at package load, so
// Lookup("gdb") etc. work out of the box.
func init() {
	MustRegister("gdb", coreFactory(MethodGDB))
	MustRegister("emd", coreFactory(MethodEMD))
	MustRegister("lp", coreFactory(MethodLP))
	MustRegister("ni", niFactory)
	MustRegister("ss", ssFactory)
}

// coreFactory builds the factory for the methods dispatched by
// internal/core (gdb, emd, lp).
func coreFactory(m Method) Factory {
	return func(opts ...Option) (Sparsifier, error) {
		cfg, err := newConfig(opts)
		if err != nil {
			return nil, err
		}
		if m == MethodEMD && (cfg.cutOrder > 1 || cfg.cutOrder == KAll) {
			return nil, fmt.Errorf("ugs: emd supports only cut order k = 1 (got %d)", cfg.cutOrder)
		}
		coreOpts := cfg.coreOptions(m)
		return NewSparsifier(m.String(), func(ctx context.Context, g *Graph, alpha float64) (*Result, error) {
			out, stats, err := core.Sparsify(ctx, g, alpha, coreOpts)
			if err != nil {
				return nil, err
			}
			return &Result{Graph: out, Stats: *stats}, nil
		}), nil
	}
}

// niFactory builds the Nagamochi–Ibaraki cut-sparsifier benchmark.
func niFactory(opts ...Option) (Sparsifier, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	niOpts := ni.Options{Seed: cfg.seed, Progress: cfg.progress}
	return NewSparsifier("ni", func(ctx context.Context, g *Graph, alpha float64) (*Result, error) {
		out, stats, err := ni.Sparsify(ctx, g, alpha, niOpts)
		if err != nil {
			return nil, err
		}
		return &Result{Graph: out, Stats: *stats}, nil
	}), nil
}

// ssFactory builds the Baswana–Sen spanner benchmark.
func ssFactory(opts ...Option) (Sparsifier, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	ssOpts := spanner.Options{Seed: cfg.seed, Progress: cfg.progress}
	return NewSparsifier("ss", func(ctx context.Context, g *Graph, alpha float64) (*Result, error) {
		out, stats, err := spanner.Sparsify(ctx, g, alpha, ssOpts)
		if err != nil {
			return nil, err
		}
		return &Result{Graph: out, Stats: *stats}, nil
	}), nil
}
