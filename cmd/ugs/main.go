// Command ugs sparsifies an uncertain graph file.
//
// Usage:
//
//	ugs -in graph.txt -out sparse.txt -alpha 0.25 -method emd
//
// The method is resolved by name from the ugs registry, so every registered
// sparsifier — including plug-ins — is reachable without this command
// changing. The input format is documented in internal/ugraph: a header line
// "<numVertices> <numEdges>" followed by "<u> <v> <p>" edge lines. The tool
// reports edge counts, entropy and degree-discrepancy statistics before and
// after sparsification; -progress streams per-iteration statistics to
// stderr, and -timeout bounds the run through context cancellation.
//
// The implementation lives in internal/cli so the end-to-end tests can run
// it in-process.
package main

import (
	"os"

	"ugs/internal/cli"
)

func main() {
	os.Exit(cli.RunSparsify(os.Args[1:], os.Stdout, os.Stderr))
}
