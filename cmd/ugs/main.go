// Command ugs sparsifies an uncertain graph file.
//
// Usage:
//
//	ugs -in graph.txt -out sparse.txt -alpha 0.25 -method emd
//
// The method is resolved by name from the ugs registry, so every registered
// sparsifier — including plug-ins — is reachable without this command
// changing. The input format is documented in internal/ugraph: a header line
// "<numVertices> <numEdges>" followed by "<u> <v> <p>" edge lines. The tool
// reports edge counts, entropy and degree-discrepancy statistics before and
// after sparsification; -progress streams per-iteration statistics to
// stderr, and -timeout bounds the run through context cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ugs"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph file (required)")
		out      = flag.String("out", "", "output graph file (optional)")
		alpha    = flag.Float64("alpha", 0.25, "sparsification ratio α ∈ (0,1)")
		method   = flag.String("method", "gdb", "sparsifier: "+strings.Join(ugs.Methods(), ", "))
		disc     = flag.String("discrepancy", "absolute", "objective: absolute or relative")
		back     = flag.String("backbone", "spanning", "backbone: spanning or random")
		k        = flag.Int("k", 1, "cut order to preserve (GDB only; -1 for k=n)")
		h        = flag.Float64("h", 0.05, "entropy parameter in [0,1]")
		seed     = flag.Int64("seed", 1, "random seed")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = unbounded)")
		progress = flag.Bool("progress", false, "stream per-iteration statistics to stderr")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ugs: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	sp, err := buildSparsifier(*method, *disc, *back, *k, *h, *seed, *progress)
	if err != nil {
		fatal(err)
	}

	g, err := ugs.ReadGraphFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input:  %v  entropy=%.2f bits\n", g, g.Entropy())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := sp.Sparsify(ctx, g, *alpha)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	sparse := res.Graph

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("output: %v  entropy=%.2f bits (%.0f%% of original)\n",
		sparse, sparse.Entropy(), 100*ugs.RelativeEntropy(sparse, g))
	fmt.Printf("method: %s  iterations=%d\n", sp.Name(), res.Stats.Iterations)
	fmt.Printf("degree discrepancy MAE: absolute=%.4g relative=%.4g\n",
		ugs.MAEDegreeDiscrepancy(g, sparse, ugs.Absolute),
		ugs.MAEDegreeDiscrepancy(g, sparse, ugs.Relative))
	fmt.Printf("sampled cut discrepancy MAE (k≤10): %.4g\n",
		ugs.MAECutDiscrepancy(g, sparse, 10, 100, rng))
	fmt.Printf("elapsed: %v\n", elapsed)

	if *out != "" {
		if err := ugs.WriteGraphFile(*out, sparse); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// buildSparsifier translates the flag values into a registry lookup. There
// is deliberately no per-method switch here: unknown methods fail inside
// Lookup with the registered alternatives listed.
func buildSparsifier(method, disc, back string, k int, h float64, seed int64, progress bool) (ugs.Sparsifier, error) {
	d, err := ugs.ParseDiscrepancy(disc)
	if err != nil {
		return nil, err
	}
	b, err := ugs.ParseBackbone(back)
	if err != nil {
		return nil, err
	}
	opts := []ugs.Option{
		ugs.WithSeed(seed),
		ugs.WithDiscrepancy(d),
		ugs.WithBackbone(b),
		ugs.WithCutOrder(k),
		ugs.WithEntropy(h),
	}
	if progress {
		opts = append(opts, ugs.WithProgress(func(s ugs.RunStats) {
			fmt.Fprintln(os.Stderr, progressLine(method, s))
		}))
	}
	return ugs.Lookup(method, opts...)
}

// progressLine renders the RunStats fields the named method actually
// populates: the D1 objective for gdb/emd (plus swaps for emd), pivot
// batches for lp, ε for NI calibrations, the stretch parameter for SS.
// Custom registrations get the generic iteration count.
func progressLine(method string, s ugs.RunStats) string {
	line := fmt.Sprintf("iter %d", s.Iterations)
	switch method {
	case "gdb":
		return fmt.Sprintf("%s  D1=%.6g", line, s.ObjectiveD1)
	case "emd":
		return fmt.Sprintf("%s  D1=%.6g swaps=%d", line, s.ObjectiveD1, s.Swaps)
	case "ni":
		return fmt.Sprintf("%s  ε=%.4g candidates=%d", line, s.Epsilon, s.AuxEdges)
	case "ss":
		return fmt.Sprintf("%s  t=%d candidates=%d", line, s.StretchT, s.AuxEdges)
	default:
		// lp reports pivot batches; custom methods report whatever their
		// Iterations field counts.
		return line
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugs:", err)
	os.Exit(1)
}
