// Command ugs sparsifies an uncertain graph file, and converts graphs
// between the storage formats.
//
// Usage:
//
//	ugs -in graph.txt -out sparse.txt -alpha 0.25 -method emd
//	ugs convert -in graph.txt -out graph.ugsb
//
// The method is resolved by name from the ugs registry, so every registered
// sparsifier — including plug-ins — is reachable without this command
// changing. Inputs and outputs may be the text interchange format
// (documented in internal/ugraph: a "<numVertices> <numEdges>" header line
// followed by "<u> <v> <p>" edge lines) or the .ugsb binary CSR format
// (documented in internal/ugsb), selected by file extension; .ugsb inputs
// are opened as memory mappings with no parsing. The tool reports edge
// counts, entropy and degree-discrepancy statistics before and after
// sparsification; -progress streams per-iteration statistics to stderr, and
// -timeout bounds the run through context cancellation.
//
// The "convert" verb translates between the two formats in either
// direction, picking the target format from the output extension. The
// "patch" verb applies an atomic edge-edit batch (insert/delete/reweight
// lines) to a local graph file, or — with -server — to a graph stored in a
// running ugs-serve via PATCH /v1/graphs/{name}/edges.
//
// The implementation lives in internal/cli so the end-to-end tests can run
// it in-process.
package main

import (
	"os"

	"ugs/internal/cli"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "convert":
			os.Exit(cli.RunConvert(args[1:], os.Stdout, os.Stderr))
		case "patch":
			os.Exit(cli.RunPatch(args[1:], os.Stdout, os.Stderr))
		}
	}
	os.Exit(cli.RunSparsify(args, os.Stdout, os.Stderr))
}
