// Command ugs sparsifies an uncertain graph file.
//
// Usage:
//
//	ugs -in graph.txt -out sparse.txt -alpha 0.25 -method emd
//
// The input format is documented in internal/ugraph: a header line
// "<numVertices> <numEdges>" followed by "<u> <v> <p>" edge lines. The tool
// reports edge counts, entropy and degree-discrepancy statistics before and
// after sparsification.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ugs"
)

func main() {
	var (
		in     = flag.String("in", "", "input graph file (required)")
		out    = flag.String("out", "", "output graph file (optional)")
		alpha  = flag.Float64("alpha", 0.25, "sparsification ratio α ∈ (0,1)")
		method = flag.String("method", "gdb", "sparsifier: gdb, emd, lp, ni, ss")
		disc   = flag.String("discrepancy", "absolute", "objective: absolute or relative")
		back   = flag.String("backbone", "spanning", "backbone: spanning or random")
		k      = flag.Int("k", 1, "cut order to preserve (GDB only; -1 for k=n)")
		h      = flag.Float64("h", 0.05, "entropy parameter in [0,1]")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ugs: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	g, err := ugs.ReadGraphFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("input:  %v  entropy=%.2f bits\n", g, g.Entropy())

	start := time.Now()
	sparse, err := run(g, *alpha, *method, *disc, *back, *k, *h, *seed)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("output: %v  entropy=%.2f bits (%.0f%% of original)\n",
		sparse, sparse.Entropy(), 100*ugs.RelativeEntropy(sparse, g))
	fmt.Printf("degree discrepancy MAE: absolute=%.4g relative=%.4g\n",
		ugs.MAEDegreeDiscrepancy(g, sparse, ugs.Absolute),
		ugs.MAEDegreeDiscrepancy(g, sparse, ugs.Relative))
	fmt.Printf("sampled cut discrepancy MAE (k≤10): %.4g\n",
		ugs.MAECutDiscrepancy(g, sparse, 10, 100, rng))
	fmt.Printf("elapsed: %v\n", elapsed)

	if *out != "" {
		if err := ugs.WriteGraphFile(*out, sparse); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func run(g *ugs.Graph, alpha float64, method, disc, back string, k int, h float64, seed int64) (*ugs.Graph, error) {
	switch method {
	case "ni":
		return ugs.NISparsify(g, alpha, seed)
	case "ss":
		return ugs.SSSparsify(g, alpha, seed)
	}

	opts := ugs.Options{K: k, H: h, Seed: seed}
	if h == 0 {
		opts.H = ugs.HZero
	}
	switch method {
	case "gdb":
		opts.Method = ugs.MethodGDB
	case "emd":
		opts.Method = ugs.MethodEMD
	case "lp":
		opts.Method = ugs.MethodLP
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
	switch disc {
	case "absolute":
		opts.Discrepancy = ugs.Absolute
	case "relative":
		opts.Discrepancy = ugs.Relative
	default:
		return nil, fmt.Errorf("unknown discrepancy %q", disc)
	}
	switch back {
	case "spanning":
		opts.Backbone = ugs.BackboneSpanning
	case "random":
		opts.Backbone = ugs.BackboneRandom
	default:
		return nil, fmt.Errorf("unknown backbone %q", back)
	}
	out, _, err := ugs.Sparsify(g, alpha, opts)
	return out, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugs:", err)
	os.Exit(1)
}
