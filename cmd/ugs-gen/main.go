// Command ugs-gen generates synthetic uncertain graphs in the text
// interchange format.
//
// Usage:
//
//	ugs-gen -kind flickr -n 1000 -out flickr.txt
//	ugs-gen -kind social -n 500 -avgdeg 18 -meanp 0.12 -out g.txt
//	ugs-gen -kind densify -n 500 -density 0.3 -out dense.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"ugs"
)

func main() {
	var (
		kind    = flag.String("kind", "social", "generator: social, flickr, twitter, densify")
		n       = flag.Int("n", 1000, "number of vertices")
		avgdeg  = flag.Float64("avgdeg", 20, "average structural degree (social)")
		meanp   = flag.Float64("meanp", 0.09, "mean edge probability")
		density = flag.Float64("density", 0.15, "fraction of complete graph (densify)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ugs-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var g *ugs.Graph
	var err error
	switch *kind {
	case "social":
		g, err = ugs.GenerateSocial(ugs.SocialConfig{
			N: *n, AvgDegree: *avgdeg, MeanProb: *meanp, Seed: *seed,
		})
	case "flickr":
		g = ugs.FlickrLike(*n, *seed)
	case "twitter":
		g = ugs.TwitterLike(*n, *seed)
	case "densify":
		var base *ugs.Graph
		base, err = ugs.GenerateSocial(ugs.SocialConfig{
			N: *n, AvgDegree: 10, MeanProb: *meanp, Seed: *seed,
		})
		if err == nil {
			g, err = ugs.Densify(base, *density, *meanp, *seed+1)
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugs-gen:", err)
		os.Exit(1)
	}

	if err := ugs.WriteGraphFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "ugs-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %v  entropy=%.2f bits\n", *out, g, g.Entropy())
}
