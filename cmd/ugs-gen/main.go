// Command ugs-gen generates synthetic uncertain graphs in the text
// interchange format.
//
// Usage:
//
//	ugs-gen -kind flickr -n 1000 -out flickr.txt
//	ugs-gen -kind social -n 500 -avgdeg 18 -meanp 0.12 -out g.txt
//	ugs-gen -kind densify -n 500 -density 0.3 -out dense.txt
//
// The implementation lives in internal/cli so the end-to-end tests can run
// it in-process.
package main

import (
	"os"

	"ugs/internal/cli"
)

func main() {
	os.Exit(cli.RunGen(os.Args[1:], os.Stdout, os.Stderr))
}
