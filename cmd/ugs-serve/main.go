// Command ugs-serve is a long-lived HTTP JSON service over the sparsifier
// core: graphs load once and stay resident in CSR form, sparsified results
// are cached (LRU + singleflight) and addressable as query targets, and
// concurrent Monte-Carlo queries coalesce into shared 64-lane WorldBatch
// flights. Long sparsifications run as cancellable async jobs with progress
// polling.
//
// Usage:
//
//	ugs-serve -addr :8471 -graphs ./examples/graphs
//
// Endpoints (see the README "Serving" section for the full walkthrough):
//
//	GET    /healthz                  liveness
//	GET    /v1/graphs                list resident graphs
//	POST   /v1/graphs/{name}         upload a graph (text interchange format)
//	POST   /v1/sparsify              sparsify (cached, singleflight)
//	GET    /v1/sparsify/{id}/graph   download a sparsified result
//	POST   /v1/query                 reliability | distance | connected
//	POST   /v1/jobs                  async sparsify job
//	GET    /v1/jobs/{id}             poll job state + progress
//	DELETE /v1/jobs/{id}             cancel a job
//	GET    /v1/stats                 cache/batcher/job counters
//
// SIGINT/SIGTERM shut the service down gracefully: in-flight requests
// drain, async jobs are cancelled through their contexts and awaited.
//
// The implementation lives in internal/cli (flags, lifecycle) and
// internal/serve (store, cache, batcher, jobs, handlers).
package main

import (
	"os"

	"ugs/internal/cli"
)

func main() {
	os.Exit(cli.RunServe(os.Args[1:], os.Stdout, os.Stderr))
}
