// Command ugs-exp regenerates the tables and figures of the paper's
// evaluation section on the synthetic stand-in datasets.
//
// Usage:
//
//	ugs-exp -list              # show available experiments
//	ugs-exp all                # run everything at CI scale
//	ugs-exp table2 fig10       # run selected experiments
//	ugs-exp -full fig6         # paper-scale parameters (slow)
//
// The implementation lives in internal/cli so the end-to-end tests can run
// it in-process.
package main

import (
	"os"

	"ugs/internal/cli"
)

func main() {
	os.Exit(cli.RunExp(os.Args[1:], os.Stdout, os.Stderr))
}
