// Command ugs-exp regenerates the tables and figures of the paper's
// evaluation section on the synthetic stand-in datasets.
//
// Usage:
//
//	ugs-exp -list              # show available experiments
//	ugs-exp all                # run everything at CI scale
//	ugs-exp table2 fig10       # run selected experiments
//	ugs-exp -full fig6         # paper-scale parameters (slow)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ugs/internal/exp"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		full    = flag.Bool("full", false, "paper-scale parameters (slow)")
		seed    = flag.Int64("seed", 42, "random seed")
		workers = flag.Int("workers", 0, "Monte-Carlo parallelism (0 = GOMAXPROCS)")
		scalar  = flag.Bool("scalar-queries", false, "use the scalar one-world-per-traversal estimators instead of the bit-parallel 64-world batch engine (ablation; results are bit-identical)")
		timeout = flag.Duration("timeout", 0, "abort the batch after this duration, checked between sparsification runs (0 = unbounded)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "ugs-exp: specify experiment ids or \"all\" (see -list)")
		os.Exit(2)
	}

	runCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	// Once the run is cancelled (first signal or timeout), unregister the
	// signal capture so a second Ctrl-C kills the process immediately
	// instead of being swallowed while a Monte-Carlo phase drains.
	go func() {
		<-runCtx.Done()
		stop()
	}()
	ctx := exp.NewContext(exp.Config{Full: *full, Seed: *seed, Workers: *workers, ScalarQueries: *scalar, Ctx: runCtx})
	var experiments []exp.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		experiments = exp.All()
	} else {
		for _, id := range ids {
			e, ok := exp.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "ugs-exp: unknown experiment %q (see -list)\n", id)
				os.Exit(2)
			}
			experiments = append(experiments, e)
		}
	}

	for _, e := range experiments {
		if err := runCtx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "ugs-exp: aborted before %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		start := time.Now()
		if err := e.Run(os.Stdout, ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ugs-exp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
