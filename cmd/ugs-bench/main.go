// Command ugs-bench runs the sparsifier and query micro-benchmark suite
// in-process and emits a JSON trajectory file with ns/op, bytes/op and
// allocs/op per benchmark. The committed BENCH_<pr>.json files form the
// perf baseline that future changes regress against; CI runs the tool in
// -quick mode (one iteration per benchmark) as a smoke test and uploads
// the JSON as an artifact.
//
// Usage:
//
//	go run ./cmd/ugs-bench -out BENCH_3.json -label "PR 3"
//	go run ./cmd/ugs-bench -quick -out bench_smoke.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ugs"
	"ugs/internal/core"
	"ugs/internal/mc"
	"ugs/internal/ugraph"
)

// result is one benchmark's measurement. SamplesUsed is reported by the
// SamplesToTarget benchmarks, where the worlds actually drawn (not the
// time per draw) is the quantity under test.
type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	SamplesUsed int     `json:"samples_used,omitempty"`
}

// trajectory is the emitted file format.
type trajectory struct {
	Schema     string    `json:"schema"`
	Label      string    `json:"label,omitempty"`
	Note       string    `json:"note,omitempty"`
	Generated  time.Time `json:"generated"`
	GoVersion  string    `json:"go"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	Quick      bool      `json:"quick"`
	Benchmarks []result  `json:"benchmarks"`
}

// measure times fn until the accumulated run time reaches benchtime,
// growing the iteration count geometrically (the testing-package protocol,
// reimplemented so a zero benchtime can request exactly one iteration).
// Allocation figures come from MemStats deltas around the timed loop.
func measure(name string, benchtime time.Duration, fn func()) result {
	fn() // warm-up: JIT-free in Go, but populates caches and pools
	n := 1
	for {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if elapsed >= benchtime || n >= 1<<24 {
			nf := float64(n)
			return result{
				Name:        name,
				Iters:       n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / nf,
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / nf,
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / nf,
			}
		}
		grow := 2.0
		if elapsed > 0 {
			grow = 1.2 * float64(benchtime) / float64(elapsed)
		}
		if grow < 1.5 {
			grow = 1.5
		}
		n = int(float64(n)*grow) + 1
	}
}

func main() {
	var (
		out       = flag.String("out", "BENCH.json", "output JSON file")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measured time per benchmark")
		quick     = flag.Bool("quick", false, "one iteration per benchmark, small fixtures only (CI smoke)")
		label     = flag.String("label", "", "freeform label stored in the file")
		note      = flag.String("note", "", "freeform note stored in the file")
	)
	flag.Parse()
	if *quick {
		*benchtime = 0
	}

	ctx := context.Background()
	g := ugs.FlickrLike(300, 42)

	sparsify := func(method string, opts ...ugs.Option) func() {
		sp, err := ugs.Lookup(method, opts...)
		if err != nil {
			fatal(err)
		}
		return func() {
			if _, err := sp.Sparsify(ctx, g, 0.16); err != nil {
				fatal(err)
			}
		}
	}

	benches := []struct {
		name string
		fn   func()
	}{
		{"SparsifyGDB", sparsify("gdb", ugs.WithSeed(1))},
		{"SparsifyGDB/dense", sparsify("gdb", ugs.WithSeed(1), ugs.WithDenseSweeps())},
		{"SparsifyEMD", sparsify("emd", ugs.WithSeed(1))},
		{"SparsifyNI", sparsify("ni", ugs.WithSeed(1))},
		{"SparsifySS", sparsify("ss", ugs.WithSeed(1))},
	}

	// Scaled sweep/round microbenchmarks on prebuilt backbones (the
	// Algorithm 2/3 hot paths without backbone construction).
	sizes := []int{10_000}
	if !*quick {
		sizes = append(sizes, 100_000)
	}
	for _, edges := range sizes {
		sg, err := ugs.GenerateSocial(ugs.SocialConfig{N: edges / 10, AvgDegree: 20, MeanProb: 0.09, Seed: 7})
		if err != nil {
			fatal(err)
		}
		backbone, err := core.SpanningBackbone(sg, 0.3, core.BGIOptions{}, rand.New(rand.NewSource(1)))
		if err != nil {
			fatal(err)
		}
		suffix := fmt.Sprintf("/E%dk", edges/1000)
		benches = append(benches,
			struct {
				name string
				fn   func()
			}{"GDBSweep" + suffix, func() {
				if _, _, err := core.GDB(ctx, sg, backbone, core.GDBOptions{}); err != nil {
					fatal(err)
				}
			}},
			struct {
				name string
				fn   func()
			}{"EMDRound" + suffix, func() {
				if _, _, err := core.EMD(ctx, sg, backbone, core.EMDOptions{MaxRounds: 2}); err != nil {
					fatal(err)
				}
			}},
		)
	}

	// Dynamic-graph benchmarks: incremental repair versus from-scratch
	// re-sparsification after an edit batch, the trade the PATCH endpoint
	// lives on. Each repair iteration draws a fresh random batch — reweights
	// plus, for multi-edit batches, one delete and one insert so the
	// structural remap path is exercised — applies it to a persistent
	// Dynamic and re-converges; the /scratch ablation patches the base
	// graph and runs the full GDB pipeline on the result. Quick mode
	// shrinks the fixture from 100k to 10k edges.
	repairEdges := 100_000
	if *quick {
		repairEdges = 10_000
	}
	rg, err := ugs.GenerateSocial(ugs.SocialConfig{N: repairEdges / 10, AvgDegree: 20, MeanProb: 0.09, Seed: 7})
	if err != nil {
		fatal(err)
	}
	randomEditBatch := func(rng *rand.Rand, g *ugs.Graph, size int) []ugs.EdgeEdit {
		edges := g.Edges()
		picked := make(map[int]bool, size)
		ids := make([]int, 0, size)
		for len(ids) < size {
			id := rng.Intn(len(edges))
			if !picked[id] {
				picked[id] = true
				ids = append(ids, id)
			}
		}
		edits := make([]ugs.EdgeEdit, 0, size)
		for i, id := range ids {
			e := edges[id]
			switch {
			case size >= 2 && i == 0:
				edits = append(edits, ugs.EdgeEdit{Op: ugs.EditDelete, U: e.U, V: e.V})
			case size >= 2 && i == 1:
				// Replace the reweight with an insert at a pair absent from
				// g (and therefore distinct from every other batch entry).
				for {
					u, v := rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices())
					if u == v {
						continue
					}
					if _, exists := g.EdgeID(u, v); exists {
						continue
					}
					edits = append(edits, ugs.EdgeEdit{Op: ugs.EditInsert, U: u, V: v, P: 0.05 + 0.9*rng.Float64()})
					break
				}
			default:
				edits = append(edits, ugs.EdgeEdit{Op: ugs.EditReweight, U: e.U, V: e.V, P: 0.05 + 0.9*rng.Float64()})
			}
		}
		return edits
	}
	scratchSp, err := ugs.Lookup("gdb", ugs.WithSeed(1))
	if err != nil {
		fatal(err)
	}
	for _, nEdits := range []int{1, 16, 64} {
		nEdits := nEdits
		dyn, err := core.NewDynamic(ctx, rg, 0.3, core.DynOptions{Method: core.MethodGDB, Seed: 1})
		if err != nil {
			fatal(err)
		}
		repairRng := rand.New(rand.NewSource(int64(100 + nEdits)))
		scratchRng := rand.New(rand.NewSource(int64(200 + nEdits)))
		name := fmt.Sprintf("RepairVsScratch/%dedits", nEdits)
		benches = append(benches,
			struct {
				name string
				fn   func()
			}{name, func() {
				batch := randomEditBatch(repairRng, dyn.Graph(), nEdits)
				if _, err := dyn.Repair(ctx, batch); err != nil {
					fatal(err)
				}
			}},
			struct {
				name string
				fn   func()
			}{name + "/scratch", func() {
				batch := randomEditBatch(scratchRng, rg, nEdits)
				res, err := ugs.ApplyEdits(rg, batch)
				if err != nil {
					fatal(err)
				}
				if _, err := scratchSp.Sparsify(ctx, res.Graph, 0.3); err != nil {
					fatal(err)
				}
			}},
		)
	}

	// Query-side benchmarks: the Monte-Carlo sampling primitives (scalar
	// world and lane-transposed 64-world batch) and the full RL / SP /
	// connectivity estimators. Each estimator runs the default bit-parallel
	// batch engine and, as the ablation, the scalar one-world-per-traversal
	// path — bit-identical results, different speed. ReliabilityMC keeps the
	// PR 3 fixture (50 pairs, 50 samples) so trajectories stay comparable.
	w := ugraph.NewWorld(g)
	wb := ugraph.NewWorldBatch[ugraph.Vec64](g)
	seed := int64(0)
	batchSeeds := make([]int64, 64)
	pairs := ugs.RandomPairs(g.NumVertices(), 50, rand.New(rand.NewSource(1)))
	queryOpts := func(scalar bool) mc.Options {
		return mc.Options{Samples: 50, Seed: 1, Scalar: scalar}
	}
	benches = append(benches,
		struct {
			name string
			fn   func()
		}{"WorldSamplingSeeded", func() {
			g.SampleWorldSeeded(seed, w)
			seed++
		}},
		struct {
			name string
			fn   func()
		}{"WorldBatchSampling", func() {
			for l := range batchSeeds {
				batchSeeds[l] = seed
				seed++
			}
			g.SampleBatchSeeded(batchSeeds, wb)
		}},
		struct {
			name string
			fn   func()
		}{"ReliabilityMC", func() {
			if _, err := ugs.Reliability(ctx, g, pairs, queryOpts(false)); err != nil {
				fatal(err)
			}
		}},
		struct {
			name string
			fn   func()
		}{"ReliabilityMC/scalar", func() {
			if _, err := ugs.Reliability(ctx, g, pairs, queryOpts(true)); err != nil {
				fatal(err)
			}
		}},
		struct {
			name string
			fn   func()
		}{"ShortestDistMC", func() {
			if _, err := ugs.ShortestDistance(ctx, g, pairs, queryOpts(false)); err != nil {
				fatal(err)
			}
		}},
		struct {
			name string
			fn   func()
		}{"ShortestDistMC/scalar", func() {
			if _, err := ugs.ShortestDistance(ctx, g, pairs, queryOpts(true)); err != nil {
				fatal(err)
			}
		}},
		struct {
			name string
			fn   func()
		}{"ConnectedMC", func() {
			if _, err := ugs.ConnectedProbability(ctx, g, queryOpts(false)); err != nil {
				fatal(err)
			}
		}},
		struct {
			name string
			fn   func()
		}{"ConnectedMC/scalar", func() {
			if _, err := ugs.ConnectedProbability(ctx, g, queryOpts(true)); err != nil {
				fatal(err)
			}
		}},
	)

	// Wide-lane benchmarks: the same estimators on a 512-sample budget at
	// every explicit engine width. 512 samples fill 8 / 4 / 2 batches at 64
	// / 128 / 256 lanes, so these measure how well wider vectors amortize
	// traversal control flow and per-fill gather passes. Results are
	// bit-identical across the three; only ns/op may differ.
	wideOpts := func(lanes int) mc.Options {
		return mc.Options{Samples: 512, Seed: 1, Lanes: lanes}
	}
	for _, lanes := range []int{64, 128, 256} {
		lanes := lanes
		benches = append(benches,
			struct {
				name string
				fn   func()
			}{fmt.Sprintf("ReliabilityMC/512x%d", lanes), func() {
				if _, err := ugs.Reliability(ctx, g, pairs, wideOpts(lanes)); err != nil {
					fatal(err)
				}
			}},
			struct {
				name string
				fn   func()
			}{fmt.Sprintf("ShortestDistMC/512x%d", lanes), func() {
				if _, err := ugs.ShortestDistance(ctx, g, pairs, wideOpts(lanes)); err != nil {
					fatal(err)
				}
			}},
			struct {
				name string
				fn   func()
			}{fmt.Sprintf("ConnectedMC/512x%d", lanes), func() {
				if _, err := ugs.ConnectedProbability(ctx, g, wideOpts(lanes)); err != nil {
					fatal(err)
				}
			}},
		)
	}

	// Multi-pair benchmarks: one SP+RL query whose pair list carries many
	// distinct sources, the workload the multi-source kernels exist for.
	// With fan-out auto the engine groups up to 64 sources into one shared
	// traversal per sampled world; /persource is the FanOut:1 ablation —
	// one traversal per source at the SAME lane width, so the pair of rows
	// isolates the fan-out win from the lane win. The scalar-width rows
	// (one world per traversal, where per-arc overhead dominates) are where
	// grouping pays most; the /x64 rows measure it on the 64-lane engine,
	// whose word-parallel traversals already amortize most per-arc cost.
	// Results are bit-identical between each row and its ablation.
	multiPairs := func(n int) []ugs.Pair {
		nv := g.NumVertices()
		ps := make([]ugs.Pair, n)
		for i := range ps {
			ps[i] = ugs.Pair{S: i % nv, T: (i + nv/2) % nv}
		}
		return ps
	}
	multiPairBench := func(pairs []ugs.Pair, fan, lanes int) func() {
		opts := mc.Options{Samples: 64, Seed: 1, Lanes: lanes, FanOut: fan}
		return func() {
			if _, _, err := ugs.ShortestDistanceAndReliability(ctx, g, pairs, opts); err != nil {
				fatal(err)
			}
		}
	}
	for _, np := range []int{1, 16, 256} {
		mp := multiPairs(np)
		name := fmt.Sprintf("MultiPairMC/%dpairs", np)
		benches = append(benches,
			struct {
				name string
				fn   func()
			}{name, multiPairBench(mp, 0, 1)},
			struct {
				name string
				fn   func()
			}{name + "/persource", multiPairBench(mp, 1, 1)},
		)
	}
	benches = append(benches,
		struct {
			name string
			fn   func()
		}{"MultiPairMC/256pairs/x64", multiPairBench(multiPairs(256), 0, 64)},
		struct {
			name string
			fn   func()
		}{"MultiPairMC/256pairs/x64/persource", multiPairBench(multiPairs(256), 1, 64)},
	)

	// SamplesToTarget: sequential stopping versus the fixed default budget.
	// The adaptive run samples until every pair's reliability CI half-width
	// is ≤ 0.1 at 95% confidence; the fixed run burns the default 500
	// samples regardless. samples_used in the JSON records the worlds each
	// actually drew — the adaptive acceptance number.
	samplesUsed := map[string]int{}
	benches = append(benches,
		struct {
			name string
			fn   func()
		}{"ReliabilitySamplesToTarget/adaptive", func() {
			o := mc.Options{Seed: 1, Target: mc.WithConfidence(0.1, 0.05)}
			_, info, err := ugs.ReliabilityRun(ctx, g, pairs, o)
			if err != nil {
				fatal(err)
			}
			samplesUsed["ReliabilitySamplesToTarget/adaptive"] = info.Samples
		}},
		struct {
			name string
			fn   func()
		}{"ReliabilitySamplesToTarget/fixed", func() {
			_, info, err := ugs.ReliabilityRun(ctx, g, pairs, mc.Options{Seed: 1})
			if err != nil {
				fatal(err)
			}
			samplesUsed["ReliabilitySamplesToTarget/fixed"] = info.Samples
		}},
		struct {
			name string
			fn   func()
		}{"ConnectedSamplesToTarget/adaptive", func() {
			o := mc.Options{Seed: 1, Target: mc.WithConfidence(0.05, 0.05)}
			_, info, err := ugs.ConnectedProbabilityRun(ctx, g, o)
			if err != nil {
				fatal(err)
			}
			samplesUsed["ConnectedSamplesToTarget/adaptive"] = info.Samples
		}},
	)

	// Storage benchmarks: loading the same graph from the text format
	// (parse + CSR build) versus opening its .ugsb binary as a memory
	// mapping — deep-validated and header-only — plus the reliability
	// estimator over the mapped view, which must match the heap numbers
	// (same CSR layout, different backing pages).
	storeDir, err := os.MkdirTemp("", "ugs-bench-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(storeDir)
	textPath := filepath.Join(storeDir, "g.ugs")
	binPath := filepath.Join(storeDir, "g.ugsb")
	if err := ugs.WriteGraphFile(textPath, g); err != nil {
		fatal(err)
	}
	if err := ugs.WriteBinaryGraphFile(binPath, g); err != nil {
		fatal(err)
	}
	mg, err := ugs.OpenMappedGraph(binPath)
	if err != nil {
		fatal(err)
	}
	defer mg.Close()
	benches = append(benches,
		struct {
			name string
			fn   func()
		}{"LoadText", func() {
			if _, err := ugs.ReadGraphFile(textPath); err != nil {
				fatal(err)
			}
		}},
		struct {
			name string
			fn   func()
		}{"LoadMapped", func() {
			m, err := ugs.OpenMappedGraph(binPath)
			if err != nil {
				fatal(err)
			}
			m.Close()
		}},
		struct {
			name string
			fn   func()
		}{"LoadMappedTrusted", func() {
			m, err := ugs.OpenMappedGraphTrusted(binPath)
			if err != nil {
				fatal(err)
			}
			m.Close()
		}},
		struct {
			name string
			fn   func()
		}{"ReliabilityMC/mapped", func() {
			if _, err := ugs.Reliability(ctx, mg, pairs, queryOpts(false)); err != nil {
				fatal(err)
			}
		}},
	)

	traj := trajectory{
		Schema:    "ugs-bench/1",
		Label:     *label,
		Note:      *note,
		Generated: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     *quick,
	}
	for _, bench := range benches {
		r := measure(bench.name, *benchtime, bench.fn)
		if s, ok := samplesUsed[bench.name]; ok {
			r.SamplesUsed = s
		}
		traj.Benchmarks = append(traj.Benchmarks, r)
		fmt.Printf("%-24s %10d iters  %14.0f ns/op  %12.0f B/op  %8.0f allocs/op\n",
			r.Name, r.Iters, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugs-bench:", err)
	os.Exit(1)
}
