package ugs_test

// Tests of the redesigned public API: the Sparsifier registry, functional
// options, parse/format round-trips, progress reporting and context
// cancellation.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"ugs"
)

func TestMethodsListsAllBuiltins(t *testing.T) {
	got := ugs.Methods()
	for _, want := range []string{"gdb", "emd", "lp", "ni", "ss"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Methods() = %v: missing %q", got, want)
		}
	}
	if !sortedStrings(got) {
		t.Errorf("Methods() = %v not sorted", got)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestRegisterErrors(t *testing.T) {
	dummy := func(opts ...ugs.Option) (ugs.Sparsifier, error) {
		return ugs.NewSparsifier("dummy", nil), nil
	}
	cases := []struct {
		name    string
		regName string
		factory ugs.Factory
		wantSub string
	}{
		{"empty name", "", dummy, "empty"},
		{"nil factory", "custom-nilfactory", nil, "nil factory"},
		{"duplicate builtin", "gdb", dummy, "already registered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ugs.Register(tc.regName, tc.factory)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Register(%q) error = %v, want substring %q", tc.regName, err, tc.wantSub)
			}
		})
	}
}

func TestRegisterAndLookupCustomMethod(t *testing.T) {
	// A custom method is a one-file plug-in: register a factory, resolve
	// it by name, and drive it through the uniform interface. The registry
	// is process-global, so a rerun of this test in the same binary
	// (go test -count=2) legitimately sees the earlier registration.
	name := "custom-keep-nothing-test"
	err := ugs.Register(name, func(opts ...ugs.Option) (ugs.Sparsifier, error) {
		return ugs.NewSparsifier(name, func(ctx context.Context, g *ugs.Graph, alpha float64) (*ugs.Result, error) {
			return nil, errors.New("not much of a sparsifier")
		}), nil
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("Register: %v", err)
	}
	sp, err := ugs.Lookup(name)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if sp.Name() != name {
		t.Errorf("Name() = %q, want %q", sp.Name(), name)
	}
	if _, err := sp.Sparsify(context.Background(), ugs.TwitterLike(30, 1), 0.5); err == nil {
		t.Error("custom sparsifier error not propagated")
	}
}

func TestLookupUnknownMethod(t *testing.T) {
	_, err := ugs.Lookup("bogus")
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, name := range []string{"bogus", "gdb", "emd"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestLookupInvalidOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  ugs.Option
	}{
		{"entropy above 1", ugs.WithEntropy(1.5)},
		{"entropy negative", ugs.WithEntropy(-0.1)},
		{"entropy NaN", ugs.WithEntropy(math.NaN())},
		{"cut order zero", ugs.WithCutOrder(0)},
		{"cut order negative non-KAll", ugs.WithCutOrder(-7)},
		{"max iters zero", ugs.WithMaxIters(0)},
		{"tau zero", ugs.WithTau(0)},
		{"tau negative", ugs.WithTau(-1)},
		{"bad discrepancy", ugs.WithDiscrepancy(ugs.Discrepancy(99))},
		{"bad backbone", ugs.WithBackbone(ugs.Backbone(99))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ugs.Lookup("gdb", tc.opt); err == nil {
				t.Error("invalid option accepted")
			}
		})
	}
	// EMD is defined for k = 1 only; the factory rejects higher orders
	// before any work happens.
	if _, err := ugs.Lookup("emd", ugs.WithCutOrder(2)); err == nil {
		t.Error("emd with cut order 2 accepted")
	}
	if _, err := ugs.Lookup("emd", ugs.WithCutOrder(ugs.KAll)); err == nil {
		t.Error("emd with KAll accepted")
	}
}

func TestOptionsMatchDeprecatedShim(t *testing.T) {
	// The functional options must configure exactly what the positional
	// Options struct did, including the HZero sentinel: an explicit
	// WithEntropy(0) is a true zero, and an omitted option is the 0.05
	// default.
	g := ugs.TwitterLike(120, 5)
	cases := []struct {
		name string
		opts []ugs.Option
		old  ugs.Options
	}{
		{
			"defaults",
			nil,
			ugs.Options{},
		},
		{
			"explicit entropy zero is HZero",
			[]ugs.Option{ugs.WithEntropy(0), ugs.WithSeed(3)},
			ugs.Options{H: ugs.HZero, Seed: 3},
		},
		{
			"full configuration",
			[]ugs.Option{
				ugs.WithDiscrepancy(ugs.Relative),
				ugs.WithBackbone(ugs.BackboneRandom),
				ugs.WithCutOrder(2),
				ugs.WithEntropy(0.4),
				ugs.WithTau(1e-7),
				ugs.WithMaxIters(17),
				ugs.WithSeed(11),
			},
			ugs.Options{
				Discrepancy: ugs.Relative,
				Backbone:    ugs.BackboneRandom,
				K:           2,
				H:           0.4,
				Tau:         1e-7,
				MaxIters:    17,
				Seed:        11,
			},
		},
		{
			"k = n redistribution",
			[]ugs.Option{ugs.WithCutOrder(ugs.KAll), ugs.WithSeed(7)},
			ugs.Options{K: ugs.KAll, Seed: 7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := ugs.Lookup("gdb", tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sp.Sparsify(context.Background(), g, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			oldGraph, oldStats, err := ugs.Sparsify(g, 0.3, tc.old)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Graph.Equal(oldGraph) {
				t.Error("options and Options shim produced different graphs")
			}
			if res.Stats != *oldStats {
				t.Errorf("stats mismatch: %+v vs %+v", res.Stats, *oldStats)
			}
		})
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, name := range []string{"gdb", "emd", "lp", "ni", "ss"} {
		m, err := ugs.ParseMethod(name)
		if err != nil {
			t.Errorf("ParseMethod(%q): %v", name, err)
			continue
		}
		if m.String() != name {
			t.Errorf("ParseMethod(%q).String() = %q", name, m.String())
		}
	}
	for _, m := range []ugs.Method{ugs.MethodGDB, ugs.MethodEMD, ugs.MethodLP, ugs.MethodNI, ugs.MethodSS} {
		back, err := ugs.ParseMethod(m.String())
		if err != nil || back != m {
			t.Errorf("round trip of %v: got %v, err %v", m, back, err)
		}
	}
	for _, d := range []ugs.Discrepancy{ugs.Absolute, ugs.Relative} {
		back, err := ugs.ParseDiscrepancy(d.String())
		if err != nil || back != d {
			t.Errorf("discrepancy round trip of %v: got %v, err %v", d, back, err)
		}
	}
	for _, b := range []ugs.Backbone{ugs.BackboneSpanning, ugs.BackboneRandom} {
		back, err := ugs.ParseBackbone(b.String())
		if err != nil || back != b {
			t.Errorf("backbone round trip of %v: got %v, err %v", b, back, err)
		}
	}
	for _, parse := range []func(string) (fmt.Stringer, error){
		func(s string) (fmt.Stringer, error) { v, err := ugs.ParseMethod(s); return v, err },
		func(s string) (fmt.Stringer, error) { v, err := ugs.ParseDiscrepancy(s); return v, err },
		func(s string) (fmt.Stringer, error) { v, err := ugs.ParseBackbone(s); return v, err },
	} {
		if _, err := parse("bogus"); err == nil {
			t.Error("bogus value parsed")
		}
	}
}

func TestEveryRegisteredMethodRunsUniformly(t *testing.T) {
	// Every built-in resolves through the registry, hits the edge budget,
	// and fills its RunStats diagnostics.
	g := ugs.TwitterLike(80, 3)
	want := int(math.Round(0.4 * float64(g.NumEdges())))
	for _, name := range []string{"gdb", "emd", "lp", "ni", "ss"} {
		t.Run(name, func(t *testing.T) {
			sp, err := ugs.Lookup(name, ugs.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sp.Sparsify(context.Background(), g, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			if res.Graph.NumEdges() != want {
				t.Errorf("%d edges, want %d", res.Graph.NumEdges(), want)
			}
			if res.Stats.Iterations < 1 {
				t.Errorf("Iterations = %d, want ≥ 1", res.Stats.Iterations)
			}
			switch name {
			case "ni":
				if res.Stats.Epsilon <= 0 {
					t.Errorf("NI Epsilon = %v, want > 0", res.Stats.Epsilon)
				}
			case "ss":
				if res.Stats.StretchT < 1 {
					t.Errorf("SS StretchT = %d, want ≥ 1", res.Stats.StretchT)
				}
			}
		})
	}
}

func TestProgressReportsEveryIteration(t *testing.T) {
	g := ugs.FlickrLike(150, 9)
	var iters []int
	sp, err := ugs.Lookup("gdb",
		ugs.WithSeed(2),
		ugs.WithProgress(func(s ugs.RunStats) { iters = append(iters, s.Iterations) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Sparsify(context.Background(), g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Stats.Iterations {
		t.Fatalf("progress fired %d times for %d iterations", len(iters), res.Stats.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("progress iteration %d at position %d", it, i)
		}
	}
}

func TestCancelledContextStopsEveryMethod(t *testing.T) {
	g := ugs.TwitterLike(80, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range ugs.Methods() {
		if strings.HasPrefix(name, "custom-") {
			continue // test registrations with their own semantics
		}
		t.Run(name, func(t *testing.T) {
			sp, err := ugs.Lookup(name, ugs.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sp.Sparsify(ctx, g, 0.4); !errors.Is(err, context.Canceled) {
				t.Errorf("error = %v, want context.Canceled", err)
			}
		})
	}
}

func TestCancelMidRunStopsEMDPromptly(t *testing.T) {
	// Cancel a running EMD sparsification of a large generated graph from
	// inside its progress callback, after the first EM round. The run must
	// surface context.Canceled without completing the remaining rounds —
	// that it stops at the immediately following round is what "promptly"
	// means here, independent of wall-clock speed.
	g := ugs.FlickrLike(1200, 21)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	sp, err := ugs.Lookup("emd",
		ugs.WithSeed(4),
		ugs.WithMaxIters(500),
		ugs.WithTau(1e-300), // effectively never converge
		ugs.WithProgress(func(s ugs.RunStats) {
			rounds = s.Iterations
			cancel()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Sparsify(ctx, g, 0.2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
	if rounds == 0 {
		t.Error("progress never fired; cancellation untested")
	}
	if rounds > 2 {
		t.Errorf("EMD ran %d rounds after cancellation; not prompt", rounds)
	}
}

func TestDeprecatedShimsStillWork(t *testing.T) {
	// Existing callers of the positional API keep compiling and produce
	// the same graphs as the registry path.
	g := ugs.TwitterLike(60, 7)
	oldNI, err := ugs.NISparsify(g, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ugs.Lookup("ni", ugs.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Sparsify(context.Background(), g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !oldNI.Equal(res.Graph) {
		t.Error("NISparsify and Lookup(\"ni\") disagree")
	}
}

func TestResultStatsIsValueCopy(t *testing.T) {
	// Result.Stats is a value, not a pointer into the method's internals:
	// mutating it must not affect a rerun.
	g := ugs.TwitterLike(60, 7)
	sp, err := ugs.Lookup("gdb", ugs.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sp.Sparsify(context.Background(), g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	saved := a.Stats
	a.Stats.Iterations = -99
	b, err := sp.Sparsify(context.Background(), g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(saved, b.Stats) {
		t.Errorf("rerun stats %+v differ from first run %+v", b.Stats, saved)
	}
}
