package ugs

import (
	"fmt"

	"ugs/internal/core"
)

// Option configures a Sparsifier at Lookup/construction time. Options are
// applied in order; an invalid value surfaces as an error from Lookup (or
// from the Factory that applies it). Options a method does not use are
// ignored — the seed, for example, drives every method, while the cut order
// only affects GDB — so one option list can configure any registry method.
type Option func(*config) error

// config collects the applied options. Zero values mean "method default"
// (the paper's recommended settings, see core.Options), so an empty option
// list reproduces ugs.Sparsify's zero-Options behavior.
type config struct {
	discrepancy Discrepancy
	backbone    Backbone
	cutOrder    int
	entropy     float64
	tau         float64
	maxIters    int
	seed        int64
	denseSweeps bool
	progress    func(RunStats)
}

// newConfig applies opts over the defaults.
func newConfig(opts []Option) (*config, error) {
	cfg := &config{}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// coreOptions translates the configuration for the internal/core dispatcher.
func (c *config) coreOptions(m Method) core.Options {
	return core.Options{
		Method:      m,
		Discrepancy: c.discrepancy,
		Backbone:    c.backbone,
		K:           c.cutOrder,
		H:           c.entropy,
		Tau:         c.tau,
		MaxIters:    c.maxIters,
		Seed:        c.seed,
		DenseSweeps: c.denseSweeps,
		Progress:    c.progress,
	}
}

// WithSeed fixes the random seed. Every registered method is fully
// deterministic given (graph, alpha, options), so equal seeds reproduce
// runs exactly.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithDiscrepancy selects the degree-discrepancy objective (Absolute or
// Relative). Used by gdb and emd; lp's objective is fixed (it minimizes
// the total absolute discrepancy by construction, Theorem 1).
func WithDiscrepancy(d Discrepancy) Option {
	return func(c *config) error {
		if d != Absolute && d != Relative {
			return fmt.Errorf("ugs: unknown discrepancy %d", int(d))
		}
		c.discrepancy = d
		return nil
	}
}

// WithBackbone selects the backbone construction (BackboneSpanning or
// BackboneRandom). Used by gdb, emd and lp.
func WithBackbone(b Backbone) Option {
	return func(c *config) error {
		if b != BackboneSpanning && b != BackboneRandom {
			return fmt.Errorf("ugs: unknown backbone %d", int(b))
		}
		c.backbone = b
		return nil
	}
}

// WithCutOrder selects the cut order k to preserve: 1 preserves expected
// degrees, values in [2, n) preserve expected k-cuts, and KAll applies the
// k = n redistribution rule. Used by gdb only; emd and lp are defined for
// k = 1.
func WithCutOrder(k int) Option {
	return func(c *config) error {
		if k < 1 && k != KAll {
			return fmt.Errorf("ugs: cut order %d outside [1, n) and not KAll", k)
		}
		c.cutOrder = k
		return nil
	}
}

// WithEntropy sets the entropy parameter h ∈ [0, 1]: when an optimal
// probability step would increase an edge's entropy, only the fraction h of
// the step is applied. Unlike the deprecated Options.H field, an explicit
// WithEntropy(0) means a true zero (the HZero sentinel is applied
// internally); omitting the option selects the paper's default 0.05.
func WithEntropy(h float64) Option {
	return func(c *config) error {
		if !(h >= 0 && h <= 1) {
			return fmt.Errorf("ugs: entropy parameter h = %v outside [0, 1]", h)
		}
		if h == 0 {
			c.entropy = HZero
		} else {
			c.entropy = h
		}
		return nil
	}
}

// WithTau sets the convergence threshold on the objective improvement
// between iterations. Used by gdb and emd; the default is 1e-9·|V|.
func WithTau(tau float64) Option {
	return func(c *config) error {
		if !(tau > 0) {
			return fmt.Errorf("ugs: convergence threshold τ = %v not positive", tau)
		}
		c.tau = tau
		return nil
	}
}

// WithMaxIters bounds the method's outer iteration loop: GDB sweeps
// (default 200) or EMD rounds (default 30).
func WithMaxIters(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("ugs: iteration bound %d below 1", n)
		}
		c.maxIters = n
		return nil
	}
}

// WithDenseSweeps disables the epoch-stamped worklist inside GDB sweeps
// (including EMD's M-phase), recomputing every backbone edge's update step
// on every sweep. The output is identical with or without the worklist —
// the worklist skips only steps that are provably no-ops — so this option
// exists for ablation benchmarks and equivalence tests. Used by gdb and
// emd.
func WithDenseSweeps() Option {
	return func(c *config) error {
		c.denseSweeps = true
		return nil
	}
}

// WithProgress installs a callback observing the run as it progresses: it
// receives a RunStats snapshot after every GDB sweep, EMD round, batch of
// LP pivots, NI calibration, or SS spanner construction. The callback runs
// synchronously on the sparsifier's goroutine; to cancel a run from inside
// it, cancel the context passed to Sparsify.
func WithProgress(fn func(RunStats)) Option {
	return func(c *config) error {
		c.progress = fn
		return nil
	}
}
